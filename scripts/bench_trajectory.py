#!/usr/bin/env python
"""Fold benchmarks/results/*.json into the PR-gating BENCH_trajectory.json.

Usage::

    # After running the benchmarks (pytest benchmarks/ ...):
    python scripts/bench_trajectory.py --label pr9

    # CI regression gate (read-only; exits 1 on a violated floor or a
    # regression beyond the noise band vs the previous entry):
    python scripts/bench_trajectory.py --check

Each fold appends (or, for an existing label, replaces) one entry in
``BENCH_trajectory.json`` at the repo root.  An entry records the four
pinned architectural floors the ROADMAP gates PRs on —

========  ==========================  =====================  ======
name      source result               claim                  floor
========  ==========================  =====================  ======
sim       population_sim.json         SessionPool vs naive   >= 20x
oracle    oracle_build.json           factory vs serial      >=  3x
sessions  service_sessions.json       SessionManager vs      >=  5x
                                      per-session build
shards    sharded_jobs.json           4-shard jobs vs        >=  2x
                                      single process         (cores)
========  ==========================  =====================  ======

— plus every other ``benchmarks/results/*.json`` reduced to its scalar
fields, under ``extras``.  The file is schema-stable: fixed field set,
keys sorted, 2-space indent, trailing newline, so a re-fold with
identical inputs is byte-identical.

The label is an argument, never a timestamp: this script is covered by
the determinism lint (``repro lint``) and deliberately reads no clock.
CI passes the commit SHA; local runs pass whatever they like.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"
TRAJECTORY = REPO_ROOT / "BENCH_trajectory.json"
SCHEMA_VERSION = 1

#: The four pinned floors: name -> (results file, speedup key, floor key).
#: A ``None`` floor recorded in the result (sharded jobs on a 1-core
#: box) means the floor is not asserted on that hardware.
FLOORS = {
    "sim": ("population_sim.json", "speedup", "floor"),
    "oracle": ("oracle_build.json", "speedup", "speedup_floor"),
    "sessions": ("service_sessions.json", "speedup", "floor"),
    "shards": ("sharded_jobs.json", "speedup", "floor"),
}

#: Default tolerated speedup drop vs the previous entry before --check
#: calls it a regression.  Speedups are ratios of two timed runs on
#: shared runners, so run-to-run scatter is real; the floors stay the
#: hard lower bound regardless.
DEFAULT_NOISE_BAND = 0.35


def _load(path: pathlib.Path) -> dict:
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict):
        raise SystemExit(f"{path}: expected a JSON object")
    return payload


def _scalars(payload: dict) -> dict:
    return {
        key: value
        for key, value in payload.items()
        if isinstance(value, (int, float, str, bool)) or value is None
    }


def build_entry(label: str, results_dir: pathlib.Path) -> dict:
    """One trajectory entry from whatever results are on disk."""
    floors: dict = {}
    consumed = set()
    for name, (filename, speedup_key, floor_key) in sorted(FLOORS.items()):
        path = results_dir / filename
        if not path.exists():
            continue
        payload = _load(path)
        consumed.add(filename)
        floors[name] = {
            "floor": payload.get(floor_key),
            "source": filename,
            "speedup": float(payload[speedup_key]),
        }
    extras = {
        path.stem: _scalars(_load(path))
        for path in sorted(results_dir.glob("*.json"))
        if path.name not in consumed
    }
    return {"extras": extras, "floors": floors, "label": label}


def load_trajectory(path: pathlib.Path) -> dict:
    if not path.exists():
        return {"entries": [], "schema": SCHEMA_VERSION}
    trajectory = _load(path)
    trajectory.setdefault("entries", [])
    trajectory.setdefault("schema", SCHEMA_VERSION)
    return trajectory


def fold(label: str, results_dir: pathlib.Path, target: pathlib.Path) -> dict:
    entry = build_entry(label, results_dir)
    if not entry["floors"]:
        raise SystemExit(
            f"no floor results under {results_dir} — run the benchmarks "
            "first (pytest benchmarks/bench_population_sim.py "
            "benchmarks/bench_oracle_build.py "
            "benchmarks/bench_service_sessions.py "
            "benchmarks/bench_sharded_jobs.py -s)"
        )
    trajectory = load_trajectory(target)
    entries = [e for e in trajectory["entries"] if e.get("label") != label]
    entries.append(entry)
    trajectory["entries"] = entries
    target.write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return entry


def check(target: pathlib.Path, noise_band: float) -> list[str]:
    """Gate the latest entry; returns human-readable violations."""
    trajectory = load_trajectory(target)
    entries = trajectory["entries"]
    if not entries:
        return [f"{target.name}: no entries — fold a benchmark run first"]
    latest = entries[-1]
    previous = entries[-2] if len(entries) > 1 else None
    problems = []
    for name in sorted(FLOORS):
        record = latest["floors"].get(name)
        if record is None:
            problems.append(
                f"{latest['label']}: floor '{name}' missing "
                f"(no {FLOORS[name][0]} in the folded run)"
            )
            continue
        speedup, floor = record["speedup"], record["floor"]
        if floor is not None and speedup < float(floor):
            problems.append(
                f"{latest['label']}: {name} speedup {speedup:.2f}x is "
                f"below its pinned {float(floor):.1f}x floor"
            )
        if previous is None:
            continue
        prior = previous["floors"].get(name)
        if prior is None:
            continue
        allowed = prior["speedup"] * (1.0 - noise_band)
        if speedup < allowed:
            problems.append(
                f"{latest['label']}: {name} speedup {speedup:.2f}x regressed "
                f"beyond the {noise_band:.0%} noise band vs "
                f"{previous['label']} ({prior['speedup']:.2f}x; "
                f"allowed >= {allowed:.2f}x)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fold benchmark results into BENCH_trajectory.json "
        "and/or gate it"
    )
    parser.add_argument("--label",
                        help="entry label (e.g. the commit SHA); required "
                        "unless --check runs alone")
    parser.add_argument("--results-dir", default=str(RESULTS_DIR),
                        help="directory of benchmark result JSON files")
    parser.add_argument("--output", default=str(TRAJECTORY),
                        help="trajectory file to append to / gate")
    parser.add_argument("--check", action="store_true",
                        help="gate the latest entry against the pinned "
                        "floors and the previous entry's noise band")
    parser.add_argument("--noise-band", type=float,
                        default=DEFAULT_NOISE_BAND,
                        help="tolerated fractional speedup drop vs the "
                        "previous entry (default %(default)s)")
    args = parser.parse_args(argv)

    target = pathlib.Path(args.output)
    if args.label:
        entry = fold(args.label, pathlib.Path(args.results_dir), target)
        for name in sorted(entry["floors"]):
            record = entry["floors"][name]
            floor = record["floor"]
            floor_text = (
                f"{float(floor):.1f}x floor" if floor is not None
                else "floor not asserted"
            )
            print(f"folded {name:<8} {record['speedup']:6.2f}x "
                  f"({floor_text}; {record['source']})")
        print(f"wrote {target} ({len(load_trajectory(target)['entries'])} "
              "entries)")
    elif not args.check:
        parser.error("nothing to do: pass --label to fold, --check to gate")

    if args.check:
        problems = check(target, args.noise_band)
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        if problems:
            return 1
        latest = load_trajectory(target)["entries"][-1]
        print(f"trajectory gate ok: entry '{latest['label']}' holds all "
              f"{len(latest['floors'])} recorded floors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
