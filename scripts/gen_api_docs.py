#!/usr/bin/env python
"""Regenerate docs/API.md from the live /v1 route table.

Usage::

    PYTHONPATH=src python scripts/gen_api_docs.py

The drift test (``tests/service/test_api_docs.py``) fails whenever the
committed file differs from a fresh render, so run this after any
route-table change.
"""

import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

from repro.service.docs import generate_api_markdown  # noqa: E402


def main() -> int:
    target = pathlib.Path(__file__).resolve().parent.parent / "docs" / "API.md"
    target.parent.mkdir(parents=True, exist_ok=True)
    content = generate_api_markdown()
    changed = not target.exists() or target.read_text() != content
    target.write_text(content)
    print(f"{'updated' if changed else 'unchanged'}: {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
