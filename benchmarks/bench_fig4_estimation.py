"""Figure 4 — convergence of the ΔG estimation networks.

Paper reference (Fig. 4, RF and MLP x Titanic/Credit/Adult): both
parties' estimators' MSE falls quickly within the first 20-30 rounds
and keeps improving with more bargaining rounds, reaching a level where
estimation-guided bargaining is reliable by ~round 100.
"""

import os

import numpy as np
import pytest
from conftest import run_once

from repro.experiments import ascii_chart, figure4_series, write_csv


@pytest.mark.parametrize("base_model", ["random_forest", "mlp"])
@pytest.mark.parametrize("dataset", ["titanic", "credit", "adult"])
def test_fig4_estimator_convergence(benchmark, results_dir, dataset, base_model):
    fig = run_once(benchmark, figure4_series, dataset, base_model, seed=0)
    print()
    print(
        ascii_chart(
            {"Task Party": fig["task_mse"], "Data Party": fig["data_mse"]},
            title=f"Figure 4 ({dataset}, {base_model}): estimator MSE vs round",
        )
    )
    write_csv(
        os.path.join(results_dir, f"fig4_{dataset}_{base_model}.csv"),
        ["round", "task_mse", "task_ci", "data_mse", "data_ci"],
        [fig["rounds"], fig["task_mse"], fig["task_ci"], fig["data_mse"], fig["data_ci"]],
    )
    # Paper shape: MSE after convergence is far below the early rounds.
    for key in ("task_mse", "data_mse"):
        curve = np.asarray(fig[key])
        finite = curve[np.isfinite(curve)]
        early = finite[1:8].mean()
        late = finite[-20:].mean()
        assert late <= early * 0.8 + 1e-9, f"{key} did not converge: {early} -> {late}"
