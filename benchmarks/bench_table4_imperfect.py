"""Table 4 — bargaining under imperfect performance information.

Paper reference (Table 4, RF and MLP x Titanic/Credit/Adult): the
imperfect-information setting reaches final prices, gains and payoffs
of the same magnitude as the perfect-information setting, with larger
variance (estimation noise); net profit and payment are typically
somewhat below the perfect-information values.
"""

import os
import re

import pytest
from conftest import run_once

from repro.experiments import format_table, table4_rows, write_csv


def _mean(cell: str) -> float:
    match = re.match(r"(-?\d+\.?\d*)", str(cell))
    return float(match.group(1)) if match else float("nan")


@pytest.mark.parametrize("base_model", ["random_forest", "mlp"])
@pytest.mark.parametrize("dataset", ["titanic", "credit", "adult"])
def test_table4_imperfect_vs_perfect(benchmark, results_dir, dataset, base_model):
    headers, rows = run_once(benchmark, table4_rows, dataset, base_model, seed=0)
    print()
    print(format_table(headers, rows, title=f"Table 4 ({dataset}, {base_model})"))
    write_csv(
        os.path.join(results_dir, f"table4_{dataset}_{base_model}.csv"),
        headers,
        [[r[i] for r in rows] for i in range(len(headers))],
    )
    cells = {row[0]: (row[1], row[2]) for row in rows}
    perfect_net = _mean(cells["Net Profit"][1])
    imperfect_net = _mean(cells["Net Profit"][0])
    # Paper shape: imperfect is effective — same order of magnitude,
    # below perfect (estimation noise costs something).  On Adult's
    # razor-thin margins (u·dG barely exceeds the reserved price) the
    # estimation noise can push quick-mode settlements slightly
    # negative — a documented deviation (EXPERIMENTS.md), so the lower
    # band is a magnitude check rather than a profitability check.
    if imperfect_net == imperfect_net and perfect_net == perfect_net:  # not NaN
        assert imperfect_net <= perfect_net * 1.25 + 0.5
        assert abs(imperfect_net) <= max(2.0, 1.5 * abs(perfect_net)) or (
            imperfect_net >= 0.05 * perfect_net - 0.5
        )
