"""Table 2 — dataset statistics.

Paper reference (Table 2):

    Dataset                    Titanic  Credit  Adult
    # samples                  891      30000   48842
    original # features        11       25      14
    preprocessed (task party)  10       9       52
    preprocessed (data party)  19       21      36

Our synthetic generators must match these counts exactly (they are
schema contracts, not measurements).
"""

import os

from conftest import run_once

from repro.experiments import format_table, table2_rows, write_csv

PAPER_TABLE2 = {
    "Titanic": (891, 11, 10, 19),
    "Credit": (30_000, 25, 9, 21),
    "Adult": (48_842, 14, 52, 36),
}


def test_table2_dataset_statistics(benchmark, results_dir):
    headers, rows = run_once(benchmark, table2_rows)
    print()
    print(format_table(headers, rows, title="Table 2: dataset statistics"))
    write_csv(
        os.path.join(results_dir, "table2.csv"),
        headers,
        [[r[i] for r in rows] for i in range(len(headers))],
    )
    for row in rows:
        name, n, orig, task, data = row
        assert (n, orig, task, data) == PAPER_TABLE2[name], (
            f"{name}: {row[1:]} != paper {PAPER_TABLE2[name]}"
        )
