"""Figure 1 — payment and net profit as functions of ΔG.

Paper reference: payment is flat at P0, linear with slope p, capped at
Ph beyond the turning point (Ph−P0)/p (Fig. 1a); net profit is negative
below P0/(u−p) and increases monotonically (Fig. 1b).
"""

import os

import numpy as np
from conftest import run_once

from repro.experiments import ascii_chart, figure1_series, write_csv


def test_fig1_payment_and_profit_curves(benchmark, results_dir):
    series = run_once(benchmark, figure1_series)
    grid = series["delta_g"]
    payment = series["payment"]
    profit = series["net_profit"]
    print()
    print(
        ascii_chart(
            {"payment": payment},
            title="Figure 1a: payment vs dG (flat -> linear -> capped)",
            x_label="dG",
        )
    )
    print(
        ascii_chart(
            {"net profit": profit},
            title="Figure 1b: task-party net profit vs dG",
            x_label="dG",
        )
    )
    write_csv(
        os.path.join(results_dir, "fig1.csv"),
        ["delta_g", "payment", "net_profit"],
        [grid, payment, profit],
    )
    # Shape assertions mirroring the paper's panel annotations.
    tp = float(series["turning_point"][0])
    be = float(series["break_even"][0])
    # Payment: monotone, floor P0 to cap Ph, kink at the turning point.
    assert np.all(np.diff(payment) >= -1e-12)
    assert payment[0] == 1.0 and payment[-1] == 3.0
    assert abs(np.interp(tp, grid, payment) - 3.0) < 1e-2
    # Net profit: negative below break-even, positive above, monotone.
    assert np.interp(be - 0.05, grid, profit) < 0
    assert np.interp(be + 0.05, grid, profit) > 0
    assert np.all(np.diff(profit) >= -1e-9)
