"""Figure 2 — bargaining dynamics with the Random Forest base model.

Paper reference (Fig. 2, Titanic/Credit/Adult x Strategic/Increase
Price/Random Bundle, 100 runs, mean + 95% CI):

* net profit and realized ΔG: Strategic highest, converging fastest;
* payment: Strategic comparable or lower than Increase Price;
* Random Bundle: early failed terminations (Case 4 violations);
* final-price densities: Strategic lands just above the data party's
  reserved price, Increase Price overshoots.
"""

import pytest
from conftest import run_once
from _render import assert_paper_shape, render_bargaining_figure

from repro.experiments import figure23_series


@pytest.mark.parametrize("dataset", ["titanic", "credit", "adult"])
def test_fig2_bargaining_dynamics_rf(benchmark, results_dir, dataset):
    fig = run_once(benchmark, figure23_series, dataset, "random_forest", seed=0)
    render_bargaining_figure(fig, figure_no=2, results_dir=results_dir)
    assert_paper_shape(fig)
