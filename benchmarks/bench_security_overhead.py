"""Ablation A3 — overhead of the §3.6 security mitigation.

Two parts:

* the A3 table (plaintext vs serial vs batched secure payment across
  key sizes, CSV artifact), and
* a real benchmark of the packed batch path
  (:mod:`repro.security.batch`) at **1024-bit keys**: whole bargaining
  rounds settle serially (the retained seed path, one big-int op per
  session) and batched (slot packing + CRT decryption + obfuscation
  pool).  The batched path must be **>= 10x** faster per round, and
  its decrypted payments and threshold bits must be value-identical
  to the serial reference.  A schema-stable JSON artifact
  (``benchmarks/results/security_overhead.json``) records the
  serial/batched/plaintext timings and overhead factors.

Scale knobs: ``REPRO_BENCH_SECURE_SESSIONS`` (sessions per round,
default 48), ``REPRO_BENCH_SECURE_ROUNDS`` (rounds, default 2;
``REPRO_FULL=1`` defaults to 4).
"""

import json
import os
import time

from conftest import run_once

from repro.experiments import format_table, security_overhead_rows, write_csv
from repro.market.pricing import QuotedPrice
from repro.security import (
    ObfuscationPool,
    generate_keypair,
    secure_payment_batch,
    secure_payment_serial_reference,
    secure_threshold_check_batch,
    secure_threshold_check_serial_reference,
)
from repro.utils.rng import spawn

KEY_BITS = 1024
SEED = 0
_FULL = os.environ.get("REPRO_FULL", "") == "1"
SESSIONS = int(os.environ.get("REPRO_BENCH_SECURE_SESSIONS", "48"))
ROUNDS = int(os.environ.get("REPRO_BENCH_SECURE_ROUNDS", "4" if _FULL else "2"))


def _round_inputs(rng, n):
    """One bargaining round's accepted sessions: gains + final quotes."""
    gains = [float(g) for g in rng.uniform(-0.5, 2.0, n)]
    quotes = [
        QuotedPrice(
            rate=float(rng.uniform(0.5, 50.0)),
            base=float(rng.uniform(0.0, 10.0)),
            cap=float(rng.uniform(10.0, 200.0)),
        )
        for _ in range(n)
    ]
    return gains, quotes


def _run_security_benchmark() -> dict:
    pub, priv = generate_keypair(bits=KEY_BITS, seed=SEED)
    rng = spawn(SEED, "security-bench")
    rounds = [_round_inputs(rng, SESSIONS) for _ in range(ROUNDS)]

    t0 = time.perf_counter()
    plaintext = [
        [q.payment(g) for g, q in zip(gains, quotes)]
        for gains, quotes in rounds
    ]
    plain_s = time.perf_counter() - t0

    serial = []
    t0 = time.perf_counter()
    for i, (gains, quotes) in enumerate(rounds):
        serial.append(secure_payment_serial_reference(
            gains, quotes, pub, priv, rng=spawn(SEED, "serial", i)
        ))
    serial_s = time.perf_counter() - t0

    # The r^n pool is precomputed once and cached across rounds (that
    # is its whole point); its build cost is reported separately and
    # included in the with-setup factor.
    t0 = time.perf_counter()
    pool = ObfuscationPool(pub, rng=spawn(SEED, "pool"))
    pool_s = time.perf_counter() - t0
    batched = []
    t0 = time.perf_counter()
    for i, (gains, quotes) in enumerate(rounds):
        batched.append(secure_payment_batch(
            gains, quotes, pub, priv, rng=spawn(SEED, "batched", i), pool=pool
        ))
    batched_s = time.perf_counter() - t0

    payments_equal = serial == batched
    gains, _ = rounds[0]
    thresholds = [float(t) for t in spawn(SEED, "thresholds").uniform(
        -0.5, 2.0, len(gains))]
    serial_bits = [c.result for c in secure_threshold_check_serial_reference(
        gains, thresholds, pub, priv, rng=spawn(SEED, "serial-bits"))]
    batched_bits = [c.result for c in secure_threshold_check_batch(
        gains, thresholds, pub, priv, rng=spawn(SEED, "batched-bits"))]

    per_round = lambda total: total / ROUNDS * 1e3  # noqa: E731
    return {
        "schema": "security_overhead/v1",
        "key_bits": KEY_BITS,
        "sessions_per_round": SESSIONS,
        "rounds": ROUNDS,
        "timings_ms": {
            "plaintext_per_round": per_round(plain_s),
            "serial_per_round": per_round(serial_s),
            "batched_per_round": per_round(batched_s),
            "pool_build": pool_s * 1e3,
        },
        "factors": {
            "batched_speedup": serial_s / batched_s,
            "batched_speedup_with_pool_build": serial_s / (batched_s + pool_s),
            "serial_vs_plaintext_overhead": serial_s / max(plain_s, 1e-12),
            "batched_vs_plaintext_overhead": batched_s / max(plain_s, 1e-12),
        },
        "identity": {
            "payments_equal": payments_equal,
            "threshold_bits_equal": serial_bits == batched_bits,
        },
        "sample_payments": {
            "plaintext": plaintext[0][:4],
            "serial": serial[0][:4],
            "batched": batched[0][:4],
        },
    }


def test_batched_secure_speedup(benchmark, results_dir):
    result = run_once(benchmark, _run_security_benchmark)
    timings, factors = result["timings_ms"], result["factors"]
    print()
    print(f"secure bargaining @ {KEY_BITS}-bit keys, "
          f"{SESSIONS} sessions/round x {ROUNDS} rounds:")
    print(f"  plaintext {timings['plaintext_per_round']:.3f} ms/round | "
          f"serial {timings['serial_per_round']:.1f} ms/round | "
          f"batched {timings['batched_per_round']:.1f} ms/round "
          f"(+ {timings['pool_build']:.1f} ms pool build, amortised)")
    print(f"  speedup {factors['batched_speedup']:.1f}x "
          f"({factors['batched_speedup_with_pool_build']:.1f}x incl. pool) | "
          f"secure-vs-plaintext overhead "
          f"{factors['batched_vs_plaintext_overhead']:.0f}x "
          f"(serial was {factors['serial_vs_plaintext_overhead']:.0f}x)")
    with open(os.path.join(results_dir, "security_overhead.json"), "w",
              encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    # Decrypted outcomes are pinned to the retained serial path ...
    assert result["identity"]["payments_equal"]
    assert result["identity"]["threshold_bits_equal"]
    # ... and the batched path is >= 10x per round at 1024-bit keys.
    assert factors["batched_speedup"] >= 10.0, factors


def test_security_overhead_table(benchmark, results_dir):
    headers, rows = run_once(benchmark, security_overhead_rows, seed=SEED)
    print()
    print(format_table(headers, rows, title="Ablation A3: secure payment overhead"))
    write_csv(
        os.path.join(results_dir, "security_overhead.csv"),
        headers,
        [[r[i] for r in rows] for i in range(len(headers))],
    )
    # Overhead grows with key size but stays practical (< 1s/round).
    for row in rows:
        assert float(row[2]) < 1000.0
