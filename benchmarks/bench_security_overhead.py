"""Ablation A3 — overhead of the §3.6 security mitigation.

Times the Paillier-based secure payment (blinded comparisons +
homomorphic linear payment) against plaintext evaluation, across key
sizes.  The absolute per-round cost stays in the milliseconds even at
512-bit keys — negligible against a VFL training round.
"""

import os

from conftest import run_once

from repro.experiments import format_table, security_overhead_rows, write_csv


def test_security_overhead(benchmark, results_dir):
    headers, rows = run_once(benchmark, security_overhead_rows, seed=0)
    print()
    print(format_table(headers, rows, title="Ablation A3: secure payment overhead"))
    write_csv(
        os.path.join(results_dir, "security_overhead.csv"),
        headers,
        [[r[i] for r in rows] for i in range(len(headers))],
    )
    # Overhead grows with key size but stays practical (< 1s/round).
    for row in rows:
        assert float(row[2]) < 1000.0
