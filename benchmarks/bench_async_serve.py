"""Asyncio serve transport vs the threaded server under client floods.

The claim under test: at high connection concurrency the asyncio
transport (``repro serve --async``) sustains **>= 5x** the session
throughput of the thread-per-connection stdlib server, because one
event loop holds every keep-alive socket while the threaded server
pays an OS thread per connection — at thousands of clients that means
thread-spawn storms, listen-queue overflow (counted here as connection
errors), and scheduler churn before any bargaining work runs.

Method: both servers are launched as real ``python -m repro serve``
subprocesses; ``REPRO_BENCH_PROCS`` asyncio load-generator processes
(``benchmarks/_serve_load.py``) drive ``REPRO_BENCH_CLIENTS`` total
keep-alive connections, draining a fixed budget of
``REPRO_BENCH_SESSIONS`` full sessions (open → step-per-round →
delete).  Fixed work, drain-to-empty, every completion counted — no
window games that reward unfair schedulers.  Sessions use a
transport-bound market config (``n_price_samples=2, max_rounds=16``)
so the comparison measures the serving path, not the engine.  Each
server is then SIGTERMed and must drain to exit code 0.

A second test pins the other acceptance axis: with micro-batching on
(``--coalesce-window``), concurrent wire sessions produce state
digests byte-identical to serial stepwise execution in-process.

The >= 5x floor is asserted in the collapse regime (>= 4096 clients,
the default).  Scaled-down runs (CI smoke: ``REPRO_BENCH_CLIENTS=256``)
still must show the async server strictly ahead, and always write the
``benchmarks/results/async_serve.json``/``.csv`` artifacts.
"""

import hashlib
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

from conftest import run_once

from repro.experiments import write_csv

HERE = os.path.dirname(os.path.abspath(__file__))
SRC = os.path.join(os.path.dirname(HERE), "src")
LOADGEN = os.path.join(HERE, "_serve_load.py")

FULL = os.environ.get("REPRO_FULL", "0") == "1"
PROCS = int(os.environ.get("REPRO_BENCH_PROCS", "8"))
CLIENTS = int(os.environ.get("REPRO_BENCH_CLIENTS", "8192"))
SESSIONS = int(
    os.environ.get("REPRO_BENCH_SESSIONS", "16384" if FULL else "8192")
)
#: The thread-per-connection collapse needs thousands of sockets to
#: show; below it the two transports are within ~2x of each other and
#: the floor only asserts that async is strictly ahead.
COLLAPSE_CLIENTS = 4096
SPEEDUP_FLOOR = 5.0
SCALED_DOWN_FLOOR = 1.0

#: Transport-bound sessions: a couple of candidate draws and a tight
#: round cap keep the engine share of each request small, so the
#: measured ratio is the serving path's.
MARKET_SPEC = {
    "dataset": "synthetic",
    "seed": 0,
    "config_overrides": {"n_price_samples": 2, "max_rounds": 16},
}


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _launch_server(extra, store_path):
    env = {**os.environ, "PYTHONPATH": SRC}
    port = _free_port()
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port),
            "--job-store", store_path,
            "--max-sessions", str(max(32768, 4 * CLIENTS)),
            *extra,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    import urllib.request

    deadline = time.time() + 60
    while time.time() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"server exited early: {proc.returncode}")
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/v1/healthz", timeout=1
            ):
                return proc, port
        except Exception:
            time.sleep(0.05)
    raise RuntimeError("server did not become healthy")


def _warm_market(port: int) -> str:
    import urllib.request

    raw = urllib.request.urlopen(
        urllib.request.Request(
            f"http://127.0.0.1:{port}/v1/markets",
            data=json.dumps(MARKET_SPEC).encode(),
            method="POST",
        ),
        timeout=120,
    ).read()
    return json.loads(raw)["market"]


def _flood(kind: str, extra: list) -> dict:
    """One server, one client flood; sessions/s plus a drain verdict."""
    proc, port = _launch_server(extra, f"/tmp/bench-async-serve-{kind}.db")
    try:
        digest = _warm_market(port)
        clients_per = max(1, CLIENTS // PROCS)
        sessions_per = max(1, SESSIONS // PROCS)
        start = time.perf_counter()
        generators = [
            subprocess.Popen(
                [
                    sys.executable, LOADGEN, str(port), digest,
                    str(clients_per), str(sessions_per),
                    str(index * sessions_per),
                ],
                stdout=subprocess.PIPE,
            )
            for index in range(PROCS)
        ]
        completed = conn_errors = 0
        for generator in generators:
            out, _ = generator.communicate(timeout=540)
            parts = out.split()
            completed += int(parts[0])
            conn_errors += int(parts[2])
        elapsed = time.perf_counter() - start
    finally:
        proc.send_signal(signal.SIGTERM)
        drain_exit = proc.wait(timeout=90)
    return {
        "kind": kind,
        "clients": clients_per * PROCS,
        "sessions": completed,
        "elapsed": elapsed,
        "sessions_per_sec": completed / elapsed,
        "conn_errors": conn_errors,
        "drain_exit": drain_exit,
    }


def _run_comparison() -> dict:
    threaded = _flood("threaded", [])
    asyncio_ = _flood("async", ["--async"])
    return {"threaded": threaded, "async": asyncio_}


def test_async_vs_threaded_session_throughput(benchmark, results_dir):
    results = run_once(benchmark, _run_comparison)
    threaded, asyncio_ = results["threaded"], results["async"]
    speedup = (
        asyncio_["sessions_per_sec"] / threaded["sessions_per_sec"]
    )
    floor = (
        SPEEDUP_FLOOR
        if threaded["clients"] >= COLLAPSE_CLIENTS
        else SCALED_DOWN_FLOOR
    )

    print()
    for row in (threaded, asyncio_):
        print(
            f"{row['kind']:>8}: {row['sessions_per_sec']:.1f} sessions/s "
            f"({row['sessions']} sessions, {row['clients']} clients, "
            f"{row['elapsed']:.1f}s, {row['conn_errors']} conn errors, "
            f"drained with exit {row['drain_exit']})"
        )
    print(f" speedup: {speedup:.2f}x (floor {floor:.0f}x)")

    payload = {
        "clients": threaded["clients"],
        "session_budget": SESSIONS,
        "threaded": threaded,
        "async": asyncio_,
        "speedup": speedup,
        "floor": floor,
    }
    with open(
        os.path.join(results_dir, "async_serve.json"), "w", encoding="utf-8"
    ) as fh:
        json.dump(payload, fh, indent=2)
    write_csv(
        os.path.join(results_dir, "async_serve.csv"),
        ["kind", "clients", "sessions_per_sec", "conn_errors", "drain_exit"],
        [
            [threaded["kind"], asyncio_["kind"]],
            [threaded["clients"], asyncio_["clients"]],
            [threaded["sessions_per_sec"], asyncio_["sessions_per_sec"]],
            [threaded["conn_errors"], asyncio_["conn_errors"]],
            [threaded["drain_exit"], asyncio_["drain_exit"]],
        ],
    )

    # Both servers must drain cleanly on SIGTERM...
    assert threaded["drain_exit"] == 0
    assert asyncio_["drain_exit"] == 0
    # ...complete the full session budget...
    assert threaded["sessions"] == SESSIONS
    assert asyncio_["sessions"] == SESSIONS
    # ...and the loop must beat thread-per-connection by the
    # architectural margin in the collapse regime.
    assert speedup >= floor


# ----------------------------------------------------------------------
# Digest parity: batched wire stepping == serial stepwise, bit for bit.
# ----------------------------------------------------------------------
PARITY_RUNS = 4
PARITY_WINDOW = 0.01


def _parity_specs():
    from repro.service import MarketSpec, SessionSpec

    return [
        SessionSpec(
            market=MarketSpec(dataset="synthetic", seed=seed),
            seed=0,
            run=run,
        )
        for run in range(PARITY_RUNS)
        for seed in (0, 1)
    ]


def _canon(reply: dict) -> str:
    return json.dumps(
        {k: v for k, v in reply.items() if k != "session"}, sort_keys=True
    )


def _serial_digest() -> str:
    """Serial stepwise execution in-process: the reference digest."""
    from repro.service import SessionManager

    manager = SessionManager()
    blobs = []
    for spec in _parity_specs():
        session_id = manager.open_session(spec)
        while True:
            reply = manager.step(session_id)
            blobs.append(_canon(reply))
            if reply["done"]:
                break
        blobs.append(_canon(manager.checkpoint(session_id)))
    return hashlib.sha256("\n".join(blobs).encode()).hexdigest()


def _batched_wire_digest() -> str:
    """Concurrent sessions through the coalescing async server."""
    from repro.client import HttpTransport
    from repro.service import SessionManager
    from repro.service.async_server import AsyncMarketplaceServer

    manager = SessionManager(coalesce_window=PARITY_WINDOW)
    server = AsyncMarketplaceServer(
        port=0, manager=manager, eviction_interval=0
    )
    host, port = server.start_background()
    specs = _parity_specs()
    results: list = [None] * len(specs)
    errors: list = []
    barrier = threading.Barrier(len(specs))

    def drive(index: int) -> None:
        try:
            transport = HttpTransport(f"http://{host}:{port}")
            spec = specs[index]
            barrier.wait(timeout=30.0)
            status, opened = transport.request(
                "POST", "/v1/sessions",
                body={
                    "market": spec.market.to_dict(),
                    "seed": spec.seed,
                    "run": spec.run,
                },
            )
            assert status == 201, opened
            sid = opened["session"]
            blobs = []
            while True:
                status, reply = transport.request(
                    "POST", f"/v1/sessions/{sid}/step"
                )
                assert status == 200, reply
                blobs.append(_canon(reply))
                if reply["done"]:
                    break
            status, state = transport.request(
                "GET", f"/v1/sessions/{sid}/state"
            )
            assert status == 200, state
            blobs.append(_canon(state))
            results[index] = blobs
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=drive, args=(i,)) for i in range(len(specs))
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180.0)
    finally:
        server.shutdown(timeout=15.0)
    if errors:
        raise errors[0]
    coalesced = manager.report()["batching"]["coalesced"]
    blobs = [blob for per_session in results for blob in per_session]
    return hashlib.sha256("\n".join(blobs).encode()).hexdigest(), coalesced


def test_batched_wire_digests_bit_identical(results_dir):
    serial = _serial_digest()
    batched, coalesced = _batched_wire_digest()

    print()
    print(f"serial stepwise digest : {serial}")
    print(f"batched wire digest    : {batched}")
    print(f"coalesced step calls   : {coalesced}")

    with open(
        os.path.join(results_dir, "async_serve_parity.json"),
        "w",
        encoding="utf-8",
    ) as fh:
        json.dump(
            {
                "serial_digest": serial,
                "batched_digest": batched,
                "coalesce_window": PARITY_WINDOW,
                "coalesced_steps": coalesced,
                "bit_identical": serial == batched,
            },
            fh,
            indent=2,
        )
    assert batched == serial
