"""Population simulator throughput: SessionPool vs a naive run() loop.

The claim under test: advancing N heterogeneous bargaining sessions
through :class:`repro.simulate.SessionPool` (vectorised batch kernel +
memoised platform setup) is **>= 20x faster** than the naive
deployment — building an engine per session and calling
``BargainingEngine.run()`` in a Python loop — on the *same* sampled
population.

Quick mode (default) times the naive loop on a subsample and
extrapolates per-session cost; ``REPRO_FULL=1`` runs the naive loop
over the whole population.  The pool always runs every session.
Writes ``benchmarks/results/population_sim.json`` (and ``.csv``) for
the perf-trajectory artifact (``scripts/bench_trajectory.py``).
"""

import json
import os
import time

import numpy as np
from conftest import run_once

from repro.experiments import write_csv
from repro.simulate import (
    PopulationSpec,
    SessionPool,
    build_report,
    sample_population,
)

N_SESSIONS = 1000
SPEEDUP_FLOOR = 20.0


def test_population_sim_speedup(benchmark, results_dir):
    full = os.environ.get("REPRO_FULL", "0") == "1"
    n_naive = N_SESSIONS if full else 120

    spec = PopulationSpec(preset="synthetic")
    population = sample_population(spec, N_SESSIONS, seed=0)

    pool = SessionPool(population, batch_size=1024)
    result = run_once(benchmark, pool.run)
    report = build_report(population, result)

    t0 = time.perf_counter()
    naive = [population.build_engine(i).run() for i in range(n_naive)]
    naive_elapsed = time.perf_counter() - t0

    naive_per_session = naive_elapsed / n_naive
    pool_per_session = result.elapsed / N_SESSIONS
    speedup = naive_per_session / pool_per_session

    print()
    print(f"naive loop : {n_naive} sessions in {naive_elapsed:.2f}s "
          f"({1.0 / naive_per_session:.1f} sessions/s)")
    print(f"SessionPool: {N_SESSIONS} sessions in {result.elapsed:.2f}s "
          f"({report.sessions_per_sec:,.0f} sessions/s)")
    print(f"speedup    : {speedup:.1f}x (floor {SPEEDUP_FLOOR:.0f}x)")
    print()
    print(report.to_text())

    payload = {
        "n_sessions": N_SESSIONS,
        "n_naive": n_naive,
        "naive_sessions_per_sec": 1.0 / naive_per_session,
        "pool_sessions_per_sec": report.sessions_per_sec,
        "speedup": speedup,
        "floor": SPEEDUP_FLOOR,
    }
    with open(os.path.join(results_dir, "population_sim.json"), "w",
              encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    write_csv(
        os.path.join(results_dir, "population_sim.csv"),
        ["n_sessions", "naive_sessions_per_sec", "pool_sessions_per_sec", "speedup"],
        [[N_SESSIONS], [1.0 / naive_per_session],
         [report.sessions_per_sec], [speedup]],
    )

    # The pool must agree with the naive engines it replaces...
    naive_accept = float(np.mean([o.accepted for o in naive]))
    pool_accept = float(result.accepted[:n_naive].mean())
    assert abs(naive_accept - pool_accept) < 0.1
    naive_rounds = float(np.mean([o.n_rounds for o in naive]))
    pool_rounds = float(result.n_rounds[:n_naive].mean())
    assert abs(naive_rounds - pool_rounds) <= max(5.0, 0.2 * naive_rounds)
    # ...and beat them by the architectural margin, not a rounding one.
    assert speedup >= SPEEDUP_FLOOR
