"""Ablation A2 — bargaining mechanics vs market structure.

Synthetic gain ladders isolate the engine from VFL noise: catalogue
size and the steepness of the seller's value premium drive convergence
length and the buyer's final price slack.
"""

import os

from conftest import run_once

from repro.experiments import ablation_market_rows, format_table, write_csv


def test_ablation_market_structure(benchmark, results_dir):
    headers, rows = run_once(benchmark, ablation_market_rows, seed=0)
    print()
    print(format_table(headers, rows, title="Ablation A2: market structure (synthetic ladders)"))
    write_csv(
        os.path.join(results_dir, "ablation_market.csv"),
        headers,
        [[r[i] for r in rows] for i in range(len(headers))],
    )
    # Steeper value premiums mean the target bundle costs more: the
    # no-premium column should settle at the lowest rounds per size.
    by_size: dict = {}
    for row in rows:
        by_size.setdefault(row[0], {})[row[1]] = row
    for size, group in by_size.items():
        flat = group[0.0]
        steep = group[4.0]
        if flat[2] != "-" and steep[2] != "-":
            assert float(flat[2]) <= float(steep[2]) + 1e-9
