"""Work stealing on a heterogeneous fleet: lease queue vs static split.

The claim under test: with three workers of which one is **4x slower**,
the fleet's lease-based queue completes a sweep **>= 1.5x** faster than
static round-robin chunk assignment — the fast workers pull the queue
dry while the slow one plods, instead of idling behind a fixed split —
and both modes merge to a report digest **bit-identical** to the
single-process :func:`~repro.service.run_simulation` reference.

Worker heterogeneity is modelled by a per-chunk service delay (the
same knob ``repro serve --join`` exposes as ``REPRO_FLEET_THROTTLE``),
so the measured gap is purely the scheduling policy, not compute noise.

A third phase re-asserts the digest under the crash drill: a real
``repro serve`` coordinator subprocess is killed with ``SIGKILL``
mid-sweep, restarted on the same store, and the resumed fleet job must
still reach the reference digest while the (never-restarted) agents
ride out the outage on their retry loops.

Writes ``benchmarks/results/fleet_steal.json`` (and ``.csv``) for the
CI artifact; the trajectory fold picks it up under ``extras``.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

from conftest import run_once

from repro.client import MarketplaceClient, TransportError
from repro.experiments import write_csv
from repro.fleet.agent import FleetAgent
from repro.fleet.executor import FleetExecutor
from repro.fleet.manager import FleetManager
from repro.jobs import JobStore
from repro.jobs.executor import (
    CHUNK_RUNNERS,
    ShardedExecutor,
    submit_simulation,
)
from repro.service import SimulationSpec, run_simulation

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SPEC = SimulationSpec(sessions=120, seed=11, batch_size=32)
CHUNKS = 12
#: Per-chunk service delay, seconds: one slow worker, two fast.
FAST_DELAY = 0.15
SLOW_DELAY = 0.6  # the 4x-slower worker
DELAYS = (SLOW_DELAY, FAST_DELAY, FAST_DELAY)
SPEEDUP_FLOOR = 1.5


def _run_static(store_path: str):
    """Static assignment: chunks pre-split round-robin, no stealing.

    Each worker thread serially executes its fixed share with its
    service delay — the sweep ends when the *slow* worker finishes its
    last pre-assigned chunk, however long the fast ones sat idle.
    """
    store = JobStore(store_path)
    record = submit_simulation(store, SPEC, chunks=CHUNKS)
    pending = store.pending_chunks(record.job_id)

    def work(chunks, delay):
        for index, start, stop in chunks:
            payload = CHUNK_RUNNERS[record.kind](record.spec, start, stop)
            time.sleep(delay)
            store.record_chunk(record.job_id, index, payload, elapsed=delay)

    threads = [
        threading.Thread(target=work, args=(pending[i::len(DELAYS)], delay))
        for i, delay in enumerate(DELAYS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # All chunks recorded: run() goes straight to the merge.
    return ShardedExecutor(store, shards=1).run(record.job_id)


def _run_fleet(store_path: str):
    """Lease queue: the same three workers pull whenever they are free."""
    store = JobStore(store_path)
    fleet = FleetManager(store, lease_ttl=30.0, heartbeat_ttl=30.0)
    record = submit_simulation(store, SPEC, chunks=CHUNKS)
    done = threading.Event()

    def work(url, delay):
        wid = fleet.register(url)["worker"]
        while not done.is_set():
            lease = fleet.lease(wid)["lease"]
            if lease is None:
                time.sleep(0.01)
                continue
            payload = CHUNK_RUNNERS[lease["kind"]](
                lease["spec"], lease["start"], lease["stop"]
            )
            time.sleep(delay)
            fleet.complete(wid, lease["job"], lease["chunk"], payload,
                           elapsed=delay)

    threads = [
        threading.Thread(target=work, args=(f"http://bench-{i}.test", delay),
                         daemon=True)
        for i, delay in enumerate(DELAYS)
    ]
    for thread in threads:
        thread.start()
    try:
        return FleetExecutor(store, fleet=fleet, poll=0.02).run(record.job_id)
    finally:
        done.set()
        for thread in threads:
            thread.join(timeout=5)


# ----------------------------------------------------------------------
# Coordinator kill -9 / restart drill (real subprocess)
# ----------------------------------------------------------------------
def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn_coordinator(port: int, store_path: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--job-store", store_path],
        cwd=REPO_ROOT, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _wait_healthy(url: str, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while True:
        try:
            with MarketplaceClient.connect(url, retries=0,
                                           timeout=5) as client:
                client.healthz()
                return
        except TransportError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.1)


def _run_kill_drill(store_path: str, reference: str) -> float:
    """kill -9 the coordinator mid-sweep; restart; resume to the digest.

    Returns the wall seconds from first submit to resumed completion.
    """
    port = _free_port()
    url = f"http://127.0.0.1:{port}"
    coordinator = _spawn_coordinator(port, store_path)
    agents = [
        FleetAgent(url, f"http://drill-{i}.test", poll=0.05,
                   heartbeat_interval=0.2, throttle=delay)
        for i, delay in enumerate(DELAYS)
    ]
    restarted = None
    t0 = time.perf_counter()
    try:
        _wait_healthy(url)
        for agent in agents:
            agent.start()
        with MarketplaceClient.connect(url) as client:
            job_id = client.submit_simulation(SPEC, chunks=CHUNKS,
                                              fleet=True)["job"]
            deadline = time.monotonic() + 120
            while client.job(job_id)["chunks_done"] < 1:
                assert time.monotonic() < deadline, "no chunk before kill"
                time.sleep(0.05)

        # Mid-sweep, hard: no drain, no goodbye.
        os.kill(coordinator.pid, signal.SIGKILL)
        coordinator.wait()

        # Same port, same store — the agents never stopped and ride the
        # outage out on their retry loops; the fresh coordinator adopts
        # them from their next heartbeat.
        restarted = _spawn_coordinator(port, store_path)
        _wait_healthy(url)
        with MarketplaceClient.connect(url) as client:
            partial = client.job(job_id)
            assert partial["chunks_done"] < partial["chunks"], \
                "kill landed after the sweep finished; nothing resumed"
            client.resume_job(job_id, fleet=True)
            final = client.wait_job(job_id, timeout=120)
            assert final["status"] == "done", final
            assert final["digest"] == reference, (
                f"drill digest {final['digest']} != reference {reference}"
            )
            workers = client.fleet_status()["workers"]
            assert len(workers) == len(DELAYS)
        return time.perf_counter() - t0
    finally:
        for agent in agents:
            agent.stop(deregister=False, timeout=2)
        for proc in (coordinator, restarted):
            if proc is not None and proc.poll() is None:
                proc.terminate()
                proc.wait(timeout=30)


def test_fleet_steal_beats_static_assignment(benchmark, results_dir,
                                             tmp_path):
    reference = run_simulation(SPEC)[2].digest()

    t0 = time.perf_counter()
    static_record = _run_static(str(tmp_path / "static.sqlite3"))
    static_elapsed = time.perf_counter() - t0

    t0 = time.perf_counter()
    fleet_record = run_once(
        benchmark, _run_fleet, str(tmp_path / "fleet.sqlite3")
    )
    fleet_elapsed = time.perf_counter() - t0

    speedup = static_elapsed / fleet_elapsed
    drill_elapsed = _run_kill_drill(str(tmp_path / "drill.sqlite3"),
                                    reference)

    print()
    print(f"static split ({len(DELAYS)} workers, one {SLOW_DELAY / FAST_DELAY:.0f}x slower): "
          f"{CHUNKS} chunks in {static_elapsed:.2f}s")
    print(f"lease stealing: {CHUNKS} chunks in {fleet_elapsed:.2f}s")
    print(f"speedup: {speedup:.2f}x (floor {SPEEDUP_FLOOR:.1f}x)")
    print(f"kill -9/restart drill resumed to the reference digest in "
          f"{drill_elapsed:.2f}s")

    payload = {
        "sessions": SPEC.sessions,
        "chunks": CHUNKS,
        "workers": len(DELAYS),
        "slow_factor": SLOW_DELAY / FAST_DELAY,
        "static_elapsed": static_elapsed,
        "fleet_elapsed": fleet_elapsed,
        "speedup": speedup,
        "floor": SPEEDUP_FLOOR,
        "drill_elapsed": drill_elapsed,
        "digest": reference,
    }
    with open(os.path.join(results_dir, "fleet_steal.json"), "w",
              encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    write_csv(
        os.path.join(results_dir, "fleet_steal.csv"),
        ["chunks", "workers", "slow_factor", "static_elapsed",
         "fleet_elapsed", "speedup"],
        [[CHUNKS], [len(DELAYS)], [payload["slow_factor"]],
         [static_elapsed], [fleet_elapsed], [speedup]],
    )

    # Correctness is unconditional: every mode merges bit-identically.
    assert static_record.status == "done"
    assert static_record.digest == reference
    assert fleet_record.status == "done"
    assert fleet_record.digest == reference
    # The scheduling claim: stealing wins on a heterogeneous fleet.
    assert speedup >= SPEEDUP_FLOOR, (
        f"lease stealing only {speedup:.2f}x faster than static "
        f"assignment (floor {SPEEDUP_FLOOR:.1f}x)"
    )
