"""Shared rendering for the Figure 2/3 bargaining-dynamics benchmarks."""

from __future__ import annotations

import os

import numpy as np

from repro.experiments import ascii_chart, write_csv

FIELD_TITLES = {
    "net_profit": "Net Profit",
    "payment": "Payment",
    "delta_g": "Realized dG",
}


def render_bargaining_figure(fig: dict, figure_no: int, results_dir: str) -> None:
    """Print the three per-round panels + density summaries, dump CSVs."""
    dataset = fig["dataset"]
    model = fig["base_model"]
    tag = f"fig{figure_no}_{dataset}"
    for field, title in FIELD_TITLES.items():
        series = {
            label: variant["curves"][field]["mean"]
            for label, variant in fig["variants"].items()
        }
        print()
        print(
            ascii_chart(
                series,
                title=f"Figure {figure_no} ({dataset}, {model}): {title} vs round",
            )
        )
        write_csv(
            os.path.join(results_dir, f"{tag}_{field}.csv"),
            ["round"] + [f"{label} mean" for label in series] + [
                f"{label} ci" for label in fig["variants"]
            ],
            [np.arange(1, fig["max_round"] + 1)]
            + [series[label] for label in series]
            + [fig["variants"][label]["curves"][field]["ci"] for label in fig["variants"]],
        )
    print()
    print(f"Final-quote summary vs reserved price of the target bundle "
          f"(p_l={fig['reserved']['rate']:.2f}, P_l={fig['reserved']['base']:.2f}):")
    for label, variant in fig["variants"].items():
        rate = variant["final_rate"]
        base = variant["final_base"]
        print(
            "  %-18s accept=%3.0f%%  rounds=%6.1f  final p=%.2f±%.2f  final P0=%.2f±%.2f"
            % (
                label,
                100 * variant["accept_rate"],
                variant["mean_rounds"],
                rate.mean() if len(rate) else float("nan"),
                rate.std() if len(rate) else float("nan"),
                base.mean() if len(base) else float("nan"),
                base.std() if len(base) else float("nan"),
            )
        )
        grid_r, dens_r = variant["rate_density"]
        grid_b, dens_b = variant["base_density"]
        write_csv(
            os.path.join(
                results_dir, f"{tag}_density_{label.split()[0].lower()}.csv"
            ),
            ["p_grid", "p_density", "P0_grid", "P0_density"],
            [grid_r, dens_r, grid_b, dens_b],
        )


def assert_paper_shape(fig: dict) -> None:
    """The qualitative claims of §4.2, asserted.

    * Strategic achieves the highest net profit of the three variants;
    * Strategic settles in fewer rounds than Increase Price;
    * Random Bundle fails most (early terminations);
    * Strategic's final rate sits closest to the reserved rate
      (no overpayment) among variants that transact.
    """
    v = fig["variants"]
    strategic = v["Strategic (Ours)"]
    increase = v["Increase Price"]
    random_b = v["Random Bundle"]

    def final_net(variant):
        curve = variant["curves"]["net_profit"]["mean"]
        finite = curve[np.isfinite(curve)]
        return finite[-1] if len(finite) else -np.inf

    assert strategic["accept_rate"] >= increase["accept_rate"] - 0.25
    assert final_net(strategic) >= final_net(increase) - 1e-9
    assert strategic["mean_rounds"] <= increase["mean_rounds"]
    assert random_b["accept_rate"] <= strategic["accept_rate"]
    reserved_rate = fig["reserved"]["rate"]
    if len(strategic["final_rate"]) and len(increase["final_rate"]):
        slack_strategic = strategic["final_rate"].mean() - reserved_rate
        slack_increase = increase["final_rate"].mean() - reserved_rate
        assert slack_strategic <= slack_increase + 1.0
