"""Service-layer session throughput: SessionManager vs naive deployment.

The claim under test: serving bargaining sessions through the service
layer — one :class:`~repro.service.manager.MarketPool` build shared by
every session the :class:`~repro.service.manager.SessionManager`
brokers — is **>= 5x** more session throughput than the naive
deployment, where each session stands up its own market
(``Market.from_spec`` + ``bargain``), i.e. pays the pre-bargaining VFL
oracle build per negotiation.

Both paths play the *same* games (identical per-run seed streams), so
the comparison also pins outcome equality, not just speed.  Quick mode
(default) times the naive path on a few sessions and extrapolates
per-session cost; ``REPRO_FULL=1`` runs the naive loop for every
session.  Writes ``benchmarks/results/service_sessions.json`` (and
``.csv``) for the CI artifact.
"""

import json
import os
import time

from conftest import run_once

from repro import obs
from repro.experiments import write_csv
from repro.market.market import Market
from repro.service import MarketPool, MarketSpec, SessionManager, SessionSpec
from repro.utils.rng import spawn

N_SESSIONS = 60
SEED = 0
SPEEDUP_FLOOR = 5.0
#: The obs layer's contract on the session hot path (see
#: ``src/repro/obs/metrics.py``): instrumentation may cost at most 5%.
OVERHEAD_CEILING = 0.05
N_OVERHEAD = 30
OVERHEAD_ROUNDS = 3


def _spec() -> MarketSpec:
    # No persistent cache on either path: the naive deployment must pay
    # the full pre-bargaining build per session, which is the point.
    return MarketSpec(dataset="titanic", seed=SEED, no_cache=True)


def _run_managed(n: int):
    pool = MarketPool()
    manager = SessionManager(pool=pool)
    spec = _spec()
    outcomes = []
    for run in range(n):
        session_id = manager.open_session(
            SessionSpec(market=spec, seed=SEED, run=run)
        )
        manager.run(session_id)
        outcomes.append(manager.outcome(session_id))
        manager.close(session_id)
    return outcomes


def test_service_session_throughput(benchmark, results_dir):
    full = os.environ.get("REPRO_FULL", "0") == "1"
    n_naive = N_SESSIONS if full else 3

    t0 = time.perf_counter()
    managed = run_once(benchmark, _run_managed, N_SESSIONS)
    managed_elapsed = time.perf_counter() - t0

    t0 = time.perf_counter()
    naive = []
    for run in range(n_naive):
        market = Market.from_spec(_spec())  # fresh build, every session
        naive.append(market.bargain(seed=spawn(SEED, "run", run)))
    naive_elapsed = time.perf_counter() - t0

    naive_per_session = naive_elapsed / n_naive
    managed_per_session = managed_elapsed / N_SESSIONS
    speedup = naive_per_session / managed_per_session

    # Instrumented-overhead check: the same managed workload with the
    # metrics registry on vs off, interleaved pairs, best-of-N each so
    # a background-load blip cannot fake (or mask) a regression.
    enabled_times: list[float] = []
    disabled_times: list[float] = []
    for _ in range(OVERHEAD_ROUNDS):
        t0 = time.perf_counter()
        _run_managed(N_OVERHEAD)
        enabled_times.append(time.perf_counter() - t0)
        obs.REGISTRY.set_enabled(False)
        try:
            t0 = time.perf_counter()
            _run_managed(N_OVERHEAD)
            disabled_times.append(time.perf_counter() - t0)
        finally:
            obs.REGISTRY.set_enabled(True)
    overhead = min(enabled_times) / min(disabled_times) - 1.0

    print()
    print(f"naive deployment: {n_naive} sessions in {naive_elapsed:.2f}s "
          f"({1.0 / naive_per_session:.2f} sessions/s; market built per session)")
    print(f"SessionManager  : {N_SESSIONS} sessions in {managed_elapsed:.2f}s "
          f"({1.0 / managed_per_session:.2f} sessions/s; one pooled market)")
    print(f"speedup         : {speedup:.1f}x (floor {SPEEDUP_FLOOR:.0f}x)")
    print(f"obs overhead    : {overhead * 100:+.2f}% on the managed path "
          f"(ceiling {OVERHEAD_CEILING * 100:.0f}%; metrics on vs off, "
          f"best of {OVERHEAD_ROUNDS})")

    payload = {
        "n_sessions": N_SESSIONS,
        "n_naive": n_naive,
        "naive_sessions_per_sec": 1.0 / naive_per_session,
        "managed_sessions_per_sec": 1.0 / managed_per_session,
        "speedup": speedup,
        "floor": SPEEDUP_FLOOR,
        "accepted": sum(o.accepted for o in managed),
        "instrumented_overhead": overhead,
        "overhead_ceiling": OVERHEAD_CEILING,
    }
    with open(os.path.join(results_dir, "service_sessions.json"), "w",
              encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    write_csv(
        os.path.join(results_dir, "service_sessions.csv"),
        ["n_sessions", "naive_sessions_per_sec",
         "managed_sessions_per_sec", "speedup"],
        [[N_SESSIONS], [payload["naive_sessions_per_sec"]],
         [payload["managed_sessions_per_sec"]], [speedup]],
    )

    # The service must play the naive deployment's exact games...
    for run, outcome in enumerate(naive):
        assert managed[run].status == outcome.status
        assert managed[run].n_rounds == outcome.n_rounds
        assert managed[run].payment == outcome.payment
    # ...and beat it by the architectural margin, not a rounding one.
    assert speedup >= SPEEDUP_FLOOR
    # The obs layer must stay within its hot-path budget.
    assert overhead <= OVERHEAD_CEILING, (
        f"instrumentation costs {overhead * 100:.1f}% on the managed "
        f"session path (ceiling {OVERHEAD_CEILING * 100:.0f}%)"
    )
