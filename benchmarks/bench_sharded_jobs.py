"""Sharded jobs throughput: ShardedExecutor vs single-process SessionPool.

The claim under test: fanning one simulation job across 4 worker-process
shards through the jobs subsystem is **>= 2x** the throughput of the
single-process :class:`~repro.simulate.pool.SessionPool` path — while
producing a **bit-identical** report digest (the correctness half is
asserted unconditionally).

The workload is stepwise-heavy (``increase_price``/``random_bundle``
mixes bypass the vectorised kernel), i.e. the pure-Python round loop
that dominates real mixed-strategy sweeps and parallelises across
processes.  The speedup floor is asserted only when the machine has
enough cores to make it physically possible (>= 4 for the 2x floor; a
relaxed 1.3x floor on 2-3 cores; printed-but-unasserted on 1 core —
CI's ``jobs`` job runs on multi-core runners and enforces the 2x).

Writes ``benchmarks/results/sharded_jobs.json`` (and ``.csv``) for the
CI artifact.  ``REPRO_FULL=1`` quadruples the population.
"""

import json
import os
import time

from conftest import run_once

from repro.experiments import write_csv
from repro.jobs import JobStore, ShardedExecutor
from repro.service import SimulationSpec, run_simulation

SHARDS = 4
CHUNKS = 8
SEED = 0


def _spec() -> SimulationSpec:
    full = os.environ.get("REPRO_FULL", "0") == "1"
    return SimulationSpec(
        sessions=1600 if full else 400,
        seed=SEED,
        batch_size=64,
        strategy_mix=(
            ("increase_price", "strategic", 0.7),
            ("strategic", "random_bundle", 0.3),
        ),
    )


def _speedup_floor(cores: int) -> float | None:
    if cores >= 4:
        return 2.0
    if cores >= 2:
        return 1.3
    return None  # parallel speedup is physically impossible on 1 core


def _run_sharded(spec, store_path):
    store = JobStore(store_path)
    executor = ShardedExecutor(store, shards=SHARDS)
    record = executor.submit(spec, chunks=CHUNKS)
    return executor.run(record.job_id)


def test_sharded_jobs_throughput(benchmark, results_dir, tmp_path):
    spec = _spec()
    cores = os.cpu_count() or 1

    t0 = time.perf_counter()
    _, _, single_report = run_simulation(spec)
    single_elapsed = time.perf_counter() - t0

    t0 = time.perf_counter()
    record = run_once(
        benchmark, _run_sharded, spec, str(tmp_path / "bench.sqlite3")
    )
    sharded_elapsed = time.perf_counter() - t0

    speedup = single_elapsed / sharded_elapsed
    floor = _speedup_floor(cores)

    print()
    print(f"single-process SessionPool: {spec.sessions} sessions in "
          f"{single_elapsed:.2f}s ({spec.sessions / single_elapsed:.0f}/s)")
    print(f"ShardedExecutor ({SHARDS} shards, {CHUNKS} chunks): "
          f"{spec.sessions} sessions in {sharded_elapsed:.2f}s "
          f"({spec.sessions / sharded_elapsed:.0f}/s)")
    print(f"speedup: {speedup:.2f}x on {cores} cores "
          f"(floor {'%.1fx' % floor if floor else 'not asserted on 1 core'})")

    payload = {
        "sessions": spec.sessions,
        "shards": SHARDS,
        "chunks": CHUNKS,
        "cores": cores,
        "single_elapsed": single_elapsed,
        "sharded_elapsed": sharded_elapsed,
        "single_sessions_per_sec": spec.sessions / single_elapsed,
        "sharded_sessions_per_sec": spec.sessions / sharded_elapsed,
        "speedup": speedup,
        "floor": floor,
        "digest": single_report.digest(),
    }
    with open(os.path.join(results_dir, "sharded_jobs.json"), "w",
              encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    write_csv(
        os.path.join(results_dir, "sharded_jobs.csv"),
        ["sessions", "shards", "cores", "single_sessions_per_sec",
         "sharded_sessions_per_sec", "speedup"],
        [[spec.sessions], [SHARDS], [cores],
         [payload["single_sessions_per_sec"]],
         [payload["sharded_sessions_per_sec"]], [speedup]],
    )

    # Correctness is unconditional: the merged report is bit-identical.
    assert record.finished
    assert record.digest == single_report.digest()
    # Throughput floor where the hardware allows a parallel speedup.
    if floor is not None:
        assert speedup >= floor, (
            f"sharded speedup {speedup:.2f}x below the {floor:.1f}x floor "
            f"on {cores} cores"
        )
