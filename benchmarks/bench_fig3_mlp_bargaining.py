"""Figure 3 — bargaining dynamics with the 3-layer MLP base model.

Paper reference (Fig. 3): same panels as Figure 2 with the SplitNN MLP
as the VFL base model; gains are larger (e.g. Titanic ΔG ~0.2 vs ~0.17
for RF) but every qualitative comparison between strategies is
unchanged — the market is protocol-agnostic (§3.6).
"""

import pytest
from conftest import run_once
from _render import assert_paper_shape, render_bargaining_figure

from repro.experiments import figure23_series


@pytest.mark.parametrize("dataset", ["titanic", "credit", "adult"])
def test_fig3_bargaining_dynamics_mlp(benchmark, results_dir, dataset):
    fig = run_once(benchmark, figure23_series, dataset, "mlp", seed=0)
    render_bargaining_figure(fig, figure_no=3, results_dir=results_dir)
    assert_paper_shape(fig)
