"""Ablation A1 — the ε trade-off (§4.3's discussion, quantified).

Smaller termination tolerances push the realised gain closer to the
target (higher revenue for both parties) at the cost of longer
bargaining — the trade-off the paper highlights when discussing
bargaining efficiency vs equilibrium quality.
"""

import os
import re

from conftest import run_once

from repro.experiments import ablation_epsilon_rows, format_table, write_csv


def test_ablation_epsilon_tradeoff(benchmark, results_dir):
    headers, rows = run_once(benchmark, ablation_epsilon_rows, "titanic", seed=0)
    print()
    print(format_table(headers, rows, title="Ablation A1: epsilon trade-off (titanic, RF)"))
    write_csv(
        os.path.join(results_dir, "ablation_epsilon.csv"),
        headers,
        [[r[i] for r in rows] for i in range(len(headers))],
    )

    def rounds_of(row):
        match = re.match(r"(\d+\.?\d*)", str(row[1]))
        return float(match.group(1)) if match else float("nan")

    # Larger eps settles (weakly) faster.
    tight, loose = rounds_of(rows[0]), rounds_of(rows[-1])
    assert loose <= tight + 1e-9
