"""Ablation A4 — learned vs sampled offer generation (§6 limitation 2).

Compares the paper's sampling-evaluation quote generation (Algorithm 1,
line 16-17) against the bandit-paced :class:`LearnedTaskParty` on
synthetic ladders: agreement rounds, buyer net profit, and final rate
slack over the seller's reserve.
"""

import os

import numpy as np
from conftest import run_once

from repro.experiments import format_table, write_csv
from repro.market import (
    BargainingEngine,
    FeatureBundle,
    LearnedTaskParty,
    MarketConfig,
    PerformanceOracle,
    ReservedPrice,
    StrategicDataParty,
    StrategicTaskParty,
)
from repro.utils import spawn


def _ladder(seed):
    rng = np.random.default_rng(seed)
    bundles = [FeatureBundle.of(range(i + 1)) for i in range(12)]
    gains, reserved = {}, {}
    for i, b in enumerate(bundles):
        q = (i + 1) / 12
        gains[b] = 0.2 * q
        reserved[b] = ReservedPrice(
            rate=5.0 + 4.0 * q + rng.uniform(0, 0.1),
            base=0.8 + 0.6 * q + rng.uniform(0, 0.02),
        )
    config = MarketConfig(
        utility_rate=500.0, budget=6.0, initial_rate=5.6, initial_base=0.95,
        target_gain=0.2, eps_d=1e-3, eps_t=1e-3, n_price_samples=64, max_rounds=400,
    )
    return gains, reserved, config


def compare(n_runs: int = 20):
    rows = []
    for label, task_cls in (("Sampled (Alg. 1)", StrategicTaskParty),
                            ("Learned (bandit)", LearnedTaskParty)):
        rounds, nets, slacks = [], [], []
        for seed in range(n_runs):
            gains, reserved, config = _ladder(0)
            oracle = PerformanceOracle.from_gains(gains)
            outcome = BargainingEngine(
                task_cls(config, list(gains.values()), rng=spawn(seed, label)),
                StrategicDataParty(gains, reserved, config),
                oracle,
                utility_rate=config.utility_rate,
                reserved_prices=reserved,
                max_rounds=config.max_rounds,
            ).run()
            if outcome.accepted:
                rounds.append(outcome.n_rounds)
                nets.append(outcome.net_profit)
                if outcome.reserved_of_bundle is not None:
                    slacks.append(
                        outcome.quote.rate - outcome.reserved_of_bundle.rate
                    )
        rows.append(
            [
                label,
                f"{np.mean(rounds):.1f}±{np.std(rounds):.1f}",
                f"{np.mean(nets):.2f}",
                f"{np.mean(slacks):.2f}",
                f"{100 * len(rounds) / n_runs:.0f}%",
            ]
        )
    return ["Offer generation", "Rounds", "Net Profit", "p - p_l", "Accept"], rows


def test_ablation_learned_offers(benchmark, results_dir):
    headers, rows = run_once(benchmark, compare)
    print()
    print(format_table(headers, rows, title="Ablation A4: sampled vs learned offer generation"))
    write_csv(
        os.path.join(results_dir, "ablation_learned.csv"),
        headers,
        [[r[i] for r in rows] for i in range(len(headers))],
    )
    # Both reach the top of the ladder reliably.
    assert all(row[-1] != "0%" for row in rows)
