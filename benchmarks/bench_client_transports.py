"""Client SDK overhead: LocalTransport vs direct calls, HTTP round trips.

The claim under test: the typed client is free where it should be free
— driving the marketplace through
``MarketplaceClient.local()`` costs **<= 5%** over calling
:class:`~repro.service.manager.SessionManager` directly (the facade
adds one route match and one JSON round-trip per call to work that
runs whole bargaining games) — and the HTTP transport's per-call
round-trip overhead is measured and reported, not guessed.

All three paths play the *same* games (identical per-run seed
streams), so the comparison also pins outcome equality across the
direct API, the local transport, and the wire.  Writes
``benchmarks/results/client_transports.json`` (and ``.csv``) for the
CI artifact.
"""

import json
import os
import threading
import time

from repro.client import MarketplaceClient
from repro.experiments import write_csv
from repro.jobs import JobStore
from repro.service import (
    JobService,
    MarketPool,
    MarketSpec,
    SessionManager,
    SessionSpec,
    create_server,
)

N_SESSIONS = 80
SEED = 0
REPEATS = 3
LOCAL_OVERHEAD_CEILING = 0.05  # LocalTransport within 5% of direct calls

SPEC = MarketSpec(dataset="synthetic", seed=SEED)


def _run_direct(manager: SessionManager, n: int):
    outcomes = []
    for run in range(n):
        session_id = manager.open_session(
            SessionSpec(market=SPEC, seed=SEED, run=run)
        )
        summary = manager.run(session_id)
        outcomes.append(summary["outcome"])
        manager.close(session_id)
    return outcomes


def _run_client(client: MarketplaceClient, n: int):
    outcomes = []
    for run in range(n):
        opened = client.open_session(
            SessionSpec(market=SPEC, seed=SEED, run=run)
        )
        state = client.run_session(opened["session"])
        outcomes.append(state["outcome"])
        client.close_session(opened["session"])
    return outcomes


def _best_of(fn, repeats: int = REPEATS):
    """(best elapsed, last result) — the min damps scheduler noise."""
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_client_transport_overhead(results_dir, tmp_path):
    # One warm pool per path: the market build must not pollute timing,
    # and identical engines guarantee identical games.
    direct_manager = SessionManager(pool=MarketPool())
    direct_manager.market(SPEC)

    local_manager = SessionManager(pool=MarketPool())
    local_client = MarketplaceClient.local(manager=local_manager)
    local_client.build_market(SPEC)

    server = create_server(
        port=0,
        manager=SessionManager(pool=MarketPool()),
        jobs=JobService(JobStore(str(tmp_path / "jobs.sqlite3"))),
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    http_client = MarketplaceClient.connect(
        "http://%s:%s" % server.server_address[:2]
    )
    http_client.build_market(SPEC)

    try:
        direct_elapsed, direct = _best_of(
            lambda: _run_direct(direct_manager, N_SESSIONS)
        )
        local_elapsed, local = _best_of(
            lambda: _run_client(local_client, N_SESSIONS)
        )
        http_elapsed, http = _best_of(
            lambda: _run_client(http_client, N_SESSIONS)
        )
    finally:
        http_client.close()
        server.shutdown()
        server.server_close()

    calls_per_session = 3  # open + run + close
    http_call_overhead = (
        (http_elapsed - direct_elapsed)
        / (N_SESSIONS * calls_per_session)
    )
    local_overhead = local_elapsed / direct_elapsed - 1.0

    print()
    print(f"direct SessionManager : {N_SESSIONS} sessions in "
          f"{direct_elapsed:.3f}s ({N_SESSIONS / direct_elapsed:.0f}/s)")
    print(f"LocalTransport client : {N_SESSIONS} sessions in "
          f"{local_elapsed:.3f}s (overhead {100 * local_overhead:+.1f}%, "
          f"ceiling {100 * LOCAL_OVERHEAD_CEILING:.0f}%)")
    print(f"HttpTransport client  : {N_SESSIONS} sessions in "
          f"{http_elapsed:.3f}s "
          f"(~{1e6 * max(http_call_overhead, 0.0):.0f}us per round trip)")

    payload = {
        "n_sessions": N_SESSIONS,
        "repeats": REPEATS,
        "direct_elapsed": direct_elapsed,
        "local_elapsed": local_elapsed,
        "http_elapsed": http_elapsed,
        "local_overhead": local_overhead,
        "local_overhead_ceiling": LOCAL_OVERHEAD_CEILING,
        "http_roundtrip_overhead_us": 1e6 * max(http_call_overhead, 0.0),
    }
    with open(os.path.join(results_dir, "client_transports.json"), "w",
              encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    write_csv(
        os.path.join(results_dir, "client_transports.csv"),
        ["n_sessions", "direct_elapsed", "local_elapsed", "http_elapsed",
         "local_overhead"],
        [[N_SESSIONS], [direct_elapsed], [local_elapsed], [http_elapsed],
         [local_overhead]],
    )

    # Every path plays the exact same games, bit for bit on the wire
    # fields (the direct summary and the wire payload share _outcome_dict).
    assert local == http
    for run, outcome in enumerate(direct):
        assert local[run]["status"] == outcome["status"]
        assert local[run]["n_rounds"] == outcome["n_rounds"]
        assert local[run]["payment"] == outcome["payment"]
    # The facade must be free: within the ceiling of direct calls.
    assert local_overhead <= LOCAL_OVERHEAD_CEILING, (
        f"LocalTransport overhead {100 * local_overhead:.1f}% exceeds "
        f"{100 * LOCAL_OVERHEAD_CEILING:.0f}%"
    )
