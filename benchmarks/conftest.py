"""Shared benchmark fixtures.

Benchmarks default to **quick mode** (reduced run counts); set
``REPRO_FULL=1`` for the paper's scale.  Each bench prints the
table/series it reproduces (run with ``-s`` to see them) and writes CSV
artifacts under ``benchmarks/results/``.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def results_dir() -> str:
    path = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(path, exist_ok=True)
    return path


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
