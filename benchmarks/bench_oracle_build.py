"""Oracle construction throughput: factory vs the seed serial build.

The claim under test: building a real-dataset ΔG oracle through the
oracle factory (shared incremental binning + the fused course kernel +
``jobs`` workers) is **>= 3x faster** end-to-end than the seed serial
path (:meth:`PerformanceOracle.build_serial_reference`: one
from-scratch federated course per ``(bundle, repeat)``), while
producing **bit-identical gains** — and that a warm-cache rebuild runs
**zero** VFL courses.

Writes ``benchmarks/results/oracle_build.json`` (and ``.csv``) so CI
can upload the perf trajectory as a machine-readable artifact.
"""

import json
import os
import time

from conftest import run_once

from repro.data.synthetic import load_dataset
from repro.experiments import write_csv
from repro.market.bundle import sample_bundles
from repro.market.oracle import PerformanceOracle
from repro.oracle_factory import GainCache, build_oracle
from repro.utils.rng import spawn

# Adult has the widest joint feature space (~88 encoded columns), which
# is the representative hard case for pre-bargaining sweeps: per-course
# cost is dominated by per-node histogram work, exactly what shared
# binning + the subset-feature kernel attack.
DATASET = "adult"
N_ROWS = 2500
SPEEDUP_FLOOR = 3.0
JOBS = min(4, os.cpu_count() or 1)


def test_oracle_build_speedup(benchmark, results_dir, tmp_path):
    full = os.environ.get("REPRO_FULL", "0") == "1"
    n_bundles = 24 if full else 16

    dataset = load_dataset(DATASET, seed=0).prepare(seed=0, n_subsample=N_ROWS)
    catalogue = sample_bundles(
        dataset.d_data, n_bundles, rng=spawn(0, DATASET, "bundles"), min_size=1
    )
    assert len(catalogue) >= 15
    params = {"n_estimators": 15, "max_depth": 8}
    cache = GainCache(str(tmp_path / "oracle-cache"))

    # Warm numpy/process state on a tiny build so neither timed run
    # pays first-touch costs.
    build_oracle(dataset, catalogue[:2], model_params=params, seed=99, jobs=1)

    # With one worker everything runs in-process, so CPU time is the
    # honest compute measure and is less exposed to co-tenant load on
    # shared machines; with real parallelism the wall clock is the
    # claim, and multi-core boxes clear the floor through the workers.
    clock = time.process_time if JOBS == 1 else time.perf_counter
    # Each round times a (reference, factory) pair back to back and the
    # asserted speedup is the *median of per-pair ratios*: background
    # load is roughly constant within a pair (so it cancels from the
    # ratio), and the median discards a round that straddled a load
    # shift.  Every factory run is a complete cold build (fresh cache
    # dir) including its cache writes.
    reference = None
    oracle = report = None
    reference_times: list[float] = []
    factory_times: list[float] = []
    for round_no in range(3):
        t0 = clock()
        reference = PerformanceOracle.build_serial_reference(
            dataset, catalogue, model_params=params, seed=0
        )
        reference_times.append(clock() - t0)
        t0 = clock()
        if round_no == 0:
            oracle, report = run_once(
                benchmark,
                build_oracle,
                dataset,
                catalogue,
                model_params=params,
                seed=0,
                jobs=JOBS,
                cache=cache,
            )
        else:
            build_oracle(
                dataset,
                catalogue,
                model_params=params,
                seed=0,
                jobs=JOBS,
                cache=GainCache(str(tmp_path / f"oracle-cache-{round_no}")),
            )
        factory_times.append(clock() - t0)
    ratios = sorted(r / f for r, f in zip(reference_times, factory_times))
    speedup = ratios[len(ratios) // 2]
    reference_elapsed = min(reference_times)
    factory_elapsed = min(factory_times)

    # Warm-cache rebuild: every course answered from disk.
    warm_oracle, warm_report = build_oracle(
        dataset, catalogue, model_params=params, seed=0, jobs=JOBS, cache=cache
    )

    print()
    print(f"seed serial build: {len(catalogue)} bundles, "
          f"rounds {[round(t, 2) for t in reference_times]} (s)")
    print(f"oracle factory   : {report.summary()}")
    print(f"oracle factory   : rounds {[round(t, 2) for t in factory_times]} (s)")
    print(f"per-round ratios : {[round(r, 2) for r in ratios]} -> median")
    print(f"warm cache       : {warm_report.summary()}")
    print(f"speedup          : {speedup:.2f}x (floor {SPEEDUP_FLOOR:.0f}x)")

    payload = {
        "dataset": DATASET,
        "n_rows": N_ROWS,
        "n_bundles": len(catalogue),
        "reference_seconds": reference_elapsed,
        "factory_seconds_best": factory_elapsed,
        "factory": report.to_dict(),
        "warm": warm_report.to_dict(),
        "speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
    }
    with open(os.path.join(results_dir, "oracle_build.json"), "w",
              encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
    write_csv(
        os.path.join(results_dir, "oracle_build.csv"),
        ["n_bundles", "reference_seconds", "factory_seconds",
         "warm_seconds", "speedup"],
        [[len(catalogue)], [reference_elapsed], [factory_elapsed],
         [warm_report.elapsed], [speedup]],
    )

    # The factory must reproduce the seed path bit for bit...
    assert oracle.gains() == reference.gains()
    assert oracle.isolated == reference.isolated
    # ...a warm rebuild must do zero platform work...
    assert warm_report.courses_run == 0
    assert warm_oracle.gains() == reference.gains()
    # ...and the cold build must beat the seed path by the
    # architectural margin, not a rounding one.
    assert speedup >= SPEEDUP_FLOOR
