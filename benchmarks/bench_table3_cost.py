"""Table 3 — effect of bargaining cost.

Paper reference (Table 3, RF base model): introducing linear
``C(T)=aT`` or exponential ``C(T)=a^T`` bargaining costs lowers net
profit, payment and realized ΔG relative to the no-cost rows; faster-
growing costs (larger a) push the parties to a less optimal but earlier
equilibrium; smaller ε yields higher revenue but more rounds (more
accumulated cost).
"""

import os
import re

import pytest
from conftest import run_once

from repro.experiments import format_table, table3_rows, write_csv


def _mean(cell: str) -> float:
    match = re.match(r"(-?\d+\.?\d*)", str(cell))
    return float(match.group(1)) if match else float("nan")


@pytest.mark.parametrize("dataset", ["titanic", "credit", "adult"])
def test_table3_bargaining_cost(benchmark, results_dir, dataset):
    headers, rows = run_once(benchmark, table3_rows, dataset, seed=0)
    print()
    print(format_table(headers, rows, title=f"Table 3 ({dataset}, RF)"))
    write_csv(
        os.path.join(results_dir, f"table3_{dataset}.csv"),
        headers,
        [[r[i] for r in rows] for i in range(len(headers))],
    )
    by_label = {}
    for row in rows:
        by_label.setdefault(row[0], []).append(row)
    # Paper shape: costs reduce cost-adjusted net profit vs the no-cost
    # rows, and the fast-growing linear a=1 schedule hurts at least as
    # much as a=0.1.
    for eps_idx in range(len(by_label["No cost"])):
        base_net = _mean(by_label["No cost"][eps_idx][2])
        slow = _mean(by_label["C(T)=aT, a=0.1"][eps_idx][2])
        fast = _mean(by_label["C(T)=aT, a=1"][eps_idx][2])
        assert slow <= base_net + 1e-6
        assert fast <= slow + max(0.15 * abs(base_net), 0.2)
