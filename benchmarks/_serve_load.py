"""Asyncio load generator subprocess for ``bench_async_serve.py``.

One process drives ``clients`` concurrent keep-alive connections, each
playing full bargaining sessions (open → step-per-round → delete)
against a ``repro serve`` instance until a shared session budget is
drained.  Requests are hand-rolled HTTP/1.1 over raw streams with
precomputed byte strings and substring done-detection: on the 1-core
benchmark boxes the generator shares the CPU with the server under
test, so every cycle the client does not spend is a cycle of measured
server throughput.

Connection failures (resets under the threaded server's thread-per-
connection storm, listen-queue overflow) are counted, backed off, and
retried — lost work stays visible in the numbers instead of crashing
the run.  Output: ``<completed> <elapsed-seconds> <conn-errors>``.

Usage: ``python _serve_load.py PORT MARKET_DIGEST CLIENTS SESSIONS BASE_RUN``
"""

import asyncio
import json
import re
import sys
import time

_SID = re.compile(rb'"session": "([^"]+)"')


def _request_bytes(method: str, path: str, blob: bytes = b"") -> bytes:
    return (
        f"{method} {path} HTTP/1.1\r\nHost: bench\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(blob)}\r\n\r\n"
    ).encode() + blob


async def _roundtrip(reader, writer, data: bytes):
    writer.write(data)
    await writer.drain()
    head = await reader.readuntil(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n")[1:]:
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":")[1])
    body = await reader.readexactly(length)
    return int(head.split(b" ", 2)[1]), body


async def _worker(port, digest, base_run, counter, done, errors):
    reader = writer = None
    sid = None
    run = None
    while True:
        if run is None:
            try:
                run = next(counter)
            except StopIteration:
                break
        try:
            if reader is None:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
            if sid is None:
                blob = json.dumps(
                    {"market": digest, "seed": 0, "run": base_run + run}
                ).encode()
                status, body = await _roundtrip(
                    reader, writer, _request_bytes("POST", "/v1/sessions", blob)
                )
                assert status == 201, body
                sid = _SID.search(body).group(1).decode()
            step = _request_bytes(
                "POST", f"/v1/sessions/{sid}/step", b'{"rounds": 1}'
            )
            while True:
                status, body = await _roundtrip(reader, writer, step)
                assert status == 200, body
                if b'"done": true' in body or b'"done":true' in body:
                    break
            await _roundtrip(
                reader, writer, _request_bytes("DELETE", f"/v1/sessions/{sid}")
            )
            done.append(run)
            sid = None
            run = None
        except (
            OSError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            # The session (if any) is abandoned server-side; idle
            # eviction reaps it.  The run index is retried on a fresh
            # connection so the drained total stays exact.
            errors.append(1)
            if writer is not None:
                writer.close()
            reader = writer = None
            sid = None
            await asyncio.sleep(0.05)
    if writer is not None:
        writer.close()


async def _main(port, digest, clients, sessions, base_run):
    counter = iter(range(sessions))
    done, errors = [], []
    start = time.perf_counter()
    await asyncio.gather(
        *(
            _worker(port, digest, base_run, counter, done, errors)
            for _ in range(clients)
        )
    )
    elapsed = time.perf_counter() - start
    print(f"{len(done)} {elapsed:.3f} {len(errors)}")


if __name__ == "__main__":
    _port, _digest = int(sys.argv[1]), sys.argv[2]
    _clients, _sessions, _base = map(int, sys.argv[3:6])
    asyncio.run(_main(_port, _digest, _clients, _sessions, _base))
