"""The telemetry surface: ``GET /v1/metrics`` and ``GET /v1/traces``.

Covers all three fronts — LocalTransport, the threaded server, and the
asyncio server — plus the exposition-format contract (parseable
Prometheus text v0.0.4) and trace pagination semantics.
"""

import http.client
import threading

import pytest

from repro import obs
from repro.client import MarketplaceClient
from repro.service import MarketPool, SessionManager, create_server
from repro.service.api import METRICS_CONTENT_TYPE
from repro.service.async_server import AsyncMarketplaceServer

SPEC_DICT = {"dataset": "synthetic", "seed": 0}

#: Families the scrape must always expose (they are registered at
#: import time, so they appear — with zero or more series — on every
#: server regardless of traffic).
CORE_FAMILIES = (
    "repro_requests_total",
    "repro_request_duration_seconds",
    "repro_coalesce_sweeps_total",
    "repro_coalesce_group_size",
    "repro_oracle_cache_courses_total",
    "repro_job_chunk_events_total",
    "repro_sessions",
)


def _parse_families(text: str) -> dict:
    """``name -> {"type": kind, "samples": [(labels_part, value)]}``.

    A deliberately strict little parser: any line that is neither a
    well-formed comment nor ``name[{labels}] value`` fails the test.
    """
    families: dict = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            name = line[len("# HELP "):].split(" ", 1)[0]
            families.setdefault(name, {"type": None, "samples": []})
        elif line.startswith("# TYPE "):
            name, kind = line[len("# TYPE "):].split(" ", 1)
            families.setdefault(name, {"type": None, "samples": []})
            families[name]["type"] = kind.strip()
        else:
            assert not line.startswith("#"), f"bad comment line: {line!r}"
            sample, _, value = line.rpartition(" ")
            float(value)  # must parse as a number
            name = sample.partition("{")[0]
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                stripped = base.removesuffix(suffix)
                if stripped in families:
                    base = stripped
                    break
            assert base in families, f"sample {name!r} before its # HELP"
            families[base]["samples"].append((sample, value))
    return families


class TestLocalTransport:
    def test_metrics_text_parses_with_core_families(self):
        client = MarketplaceClient.local(
            manager=SessionManager(pool=MarketPool())
        )
        client.build_market(SPEC_DICT)
        opened = client.open_session({"market": SPEC_DICT, "seed": 0})
        client.run_session(opened["session"])
        families = _parse_families(client.metrics_text())
        for name in CORE_FAMILIES:
            assert name in families, f"missing family {name}"
        assert families["repro_requests_total"]["type"] == "counter"
        assert families["repro_request_duration_seconds"]["type"] == "histogram"
        # Traffic from this very test is visible in the request family.
        samples = dict(families["repro_requests_total"]["samples"])
        assert any("/v1/sessions" in key for key in samples)

    def test_traces_paginate_by_seq(self):
        client = MarketplaceClient.local(
            manager=SessionManager(pool=MarketPool())
        )
        before = obs.TRACER.last_seq()
        client.health()
        client.health()
        spans = [s for s in client.traces(offset=before)
                 if s["name"].startswith(("client:", "dispatch"))]
        assert len(spans) >= 4  # 2 client spans + 2 dispatch spans
        seqs = [s["seq"] for s in spans]
        assert seqs == sorted(seqs)
        # Paging from the last seen seq yields nothing older — only the
        # paging request's own spans (its dispatch records before the
        # stream drains) can appear.
        leftover = client.traces(offset=obs.TRACER.last_seq())
        assert {s["name"] for s in leftover} <= {"dispatch"}

    def test_dispatch_span_is_child_of_client_span(self):
        client = MarketplaceClient.local(
            manager=SessionManager(pool=MarketPool())
        )
        before = obs.TRACER.last_seq()
        client.health()
        spans = obs.TRACER.spans(offset=before)
        [client_span] = [s for s in spans if s["name"] == "client:GET /v1/health"]
        [dispatch] = [s for s in spans if s["name"] == "dispatch"]
        assert dispatch["trace_id"] == client_span["trace_id"]
        assert dispatch["parent_id"] == client_span["span_id"]
        assert dispatch["attrs"]["status"] == 200


@pytest.fixture(scope="module")
def threaded():
    server = create_server(port=0, manager=SessionManager(pool=MarketPool()))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    yield {"host": host, "port": port}
    server.shutdown()
    server.server_close()


@pytest.fixture(scope="module")
def asyncio_server():
    server = AsyncMarketplaceServer(
        port=0, manager=SessionManager(pool=MarketPool())
    )
    host, port = server.start_background()
    yield {"host": host, "port": port}
    server.shutdown(timeout=10.0)


def _scrape(service) -> tuple[int, str, str]:
    conn = http.client.HTTPConnection(
        service["host"], service["port"], timeout=30
    )
    try:
        conn.request("GET", "/v1/metrics")
        response = conn.getresponse()
        return (
            response.status,
            response.getheader("Content-Type"),
            response.read().decode("utf-8"),
        )
    finally:
        conn.close()


class TestHttpExposition:
    def test_threaded_server_scrape(self, threaded):
        status, content_type, text = _scrape(threaded)
        assert status == 200
        assert content_type == METRICS_CONTENT_TYPE
        families = _parse_families(text)
        for name in CORE_FAMILIES:
            assert name in families

    def test_asyncio_server_scrape(self, asyncio_server):
        status, content_type, text = _scrape(asyncio_server)
        assert status == 200
        assert content_type == METRICS_CONTENT_TYPE
        families = _parse_families(text)
        for name in CORE_FAMILIES:
            assert name in families

    def test_traces_stream_over_http(self, threaded):
        with MarketplaceClient.connect(
            f"http://{threaded['host']}:{threaded['port']}"
        ) as client:
            before = obs.TRACER.last_seq()
            client.health()
            spans = client.traces(offset=before)
        names = [s["name"] for s in spans]
        assert "dispatch" in names
