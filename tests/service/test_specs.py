"""Spec round-trips, digest stability, and validation errors."""

import pytest

from repro.service import MarketSpec, SessionSpec, SimulationSpec


class TestMarketSpec:
    def test_round_trip(self):
        spec = MarketSpec(
            dataset="titanic",
            base_model="mlp",
            seed=3,
            n_bundles=8,
            model_params={"epochs": 5},
            config_overrides={"max_rounds": 50},
            jobs=2,
            cache_dir="/tmp/c",
        )
        clone = MarketSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.digest() == spec.digest()

    def test_digest_pinned(self):
        # Digests are cache keys; silent canonicalisation drift would
        # orphan persistent entries.  Pinned for the simplest spec.
        spec = MarketSpec(dataset="synthetic", seed=0)
        assert spec.digest() == "891c9d326d35fc2e"
        assert spec.identity_digest() == "c4f6a7e5de576638"

    def test_identity_digest_ignores_execution_knobs(self):
        base = MarketSpec(dataset="titanic", seed=0)
        tuned = MarketSpec(
            dataset="titanic", seed=0, jobs=8, cache_dir="/x", no_cache=True
        )
        assert base.identity_digest() == tuned.identity_digest()
        assert base.digest() != tuned.digest()

    def test_execution_knobs_enter_full_digest(self):
        a = MarketSpec(dataset="titanic", no_cache=True)
        b = MarketSpec(dataset="titanic", no_cache=False)
        c = MarketSpec(dataset="titanic", no_cache=True, jobs=4)
        assert len({a.digest(), b.digest(), c.digest()}) == 3

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            MarketSpec(dataset="mnist")

    def test_unknown_base_model_rejected(self):
        with pytest.raises(ValueError, match="unknown base model"):
            MarketSpec(dataset="titanic", base_model="svm")

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown MarketSpec keys"):
            MarketSpec.from_dict({"dataset": "titanic", "jbos": 4})

    def test_cache_resolution(self, tmp_path):
        assert MarketSpec(dataset="titanic", no_cache=True).cache() is None
        cache = MarketSpec(dataset="titanic", cache_dir=str(tmp_path)).cache()
        assert cache is not None and cache.directory == str(tmp_path)


class TestSessionSpec:
    def test_round_trip_nested_market(self):
        spec = SessionSpec(
            market=MarketSpec(dataset="synthetic", seed=1),
            task="increase_price",
            data="random_bundle",
            seed=7,
            run=3,
            cost_task=("linear", 0.05),
            config_overrides={"max_rounds": 9},
        )
        clone = SessionSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.digest() == spec.digest()

    def test_digest_pinned(self):
        spec = SessionSpec(
            market=MarketSpec(dataset="synthetic", seed=0), seed=7, run=3
        )
        assert spec.digest() == "2ded0941cc84e123"

    def test_market_may_be_pool_digest(self):
        spec = SessionSpec(market="891c9d326d35fc2e", seed=0)
        assert SessionSpec.from_dict(spec.to_dict()) == spec

    def test_secure_keys_emitted_only_off_default(self):
        # Plain specs keep their pre-secure wire shape and digest.
        plain = SessionSpec(market="x", seed=0)
        assert "secure" not in plain.to_dict()
        assert "key_bits" not in plain.to_dict()
        secure = SessionSpec(market="x", seed=0, secure=True, key_bits=512)
        payload = secure.to_dict()
        assert payload["secure"] is True and payload["key_bits"] == 512
        assert SessionSpec.from_dict(payload) == secure
        assert secure.digest() != plain.digest()

    def test_secure_validation(self):
        with pytest.raises(ValueError, match="key_bits"):
            SessionSpec(market="x", secure=True, key_bits=64)
        with pytest.raises(ValueError, match="secure must be a bool"):
            SessionSpec(market="x", secure=1)

    def test_engine_seed_matches_bargain_many_derivation(self):
        from repro.utils.rng import spawn

        spec = SessionSpec(market="x", seed=5, run=2)
        expected = spawn(5, "run", 2)
        got = spec.engine_seed()
        assert got.bit_generator.state == expected.bit_generator.state
        assert SessionSpec(market="x", seed=5).engine_seed() == 5

    def test_unknown_strategies_rejected(self):
        with pytest.raises(ValueError, match="unknown task strategy"):
            SessionSpec(market="x", task="oracle_cheat")
        with pytest.raises(ValueError, match="unknown data strategy"):
            SessionSpec(market="x", data="oracle_cheat")

    def test_cost_pairs_validated(self):
        with pytest.raises(ValueError, match="unknown cost kind"):
            SessionSpec(market="x", cost_task=("frobnicate", 1.0))
        with pytest.raises(ValueError, match="linear cost needs a > 0"):
            SessionSpec(market="x", cost_data=("linear", 0.0))
        spec = SessionSpec(market="x", cost_task=("linear", 0.05))
        cost_task, cost_data = spec.cost_models()
        assert cost_task is not None and cost_data is None

    def test_information_validated(self):
        with pytest.raises(ValueError, match="information"):
            SessionSpec(market="x", information="partial")


class TestSimulationSpec:
    def test_round_trip(self):
        spec = SimulationSpec(
            sessions=50,
            preset="titanic",
            strategy_mix=(("strategic", "strategic", 0.5),
                          ("increase_price", "strategic", 0.5)),
            cost_mix=(("none", 0.0, 0.7), ("linear", 0.05, 0.3)),
        )
        clone = SimulationSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.digest() == spec.digest()

    def test_digest_pinned(self):
        assert SimulationSpec(sessions=100, seed=1).digest() == "053c74fd2bfa5e03"

    def test_json_lists_normalise_to_tuples(self):
        spec = SimulationSpec.from_dict({
            "sessions": 10,
            "strategy_mix": [["strategic", "strategic", 1.0]],
        })
        assert spec.strategy_mix == (("strategic", "strategic", 1.0),)

    def test_preset_resolution(self):
        assert SimulationSpec().resolved_preset() == "synthetic"
        assert SimulationSpec(dataset="credit").resolved_preset() == "credit"
        assert (SimulationSpec(dataset="credit", preset="adult")
                .resolved_preset() == "adult")

    def test_market_spec_only_with_dataset(self):
        assert SimulationSpec().market_spec() is None
        backing = SimulationSpec(dataset="titanic", jobs=2).market_spec()
        assert backing.dataset == "titanic" and backing.jobs == 2

    def test_bad_mixes_rejected(self):
        with pytest.raises(ValueError, match="unknown task strategy"):
            SimulationSpec(strategy_mix=(("alien", "strategic", 1.0),))
        with pytest.raises(ValueError, match="unknown cost kind"):
            SimulationSpec(cost_mix=(("frobnicate", 2.0, 1.0),))
        with pytest.raises(ValueError, match="unknown preset"):
            SimulationSpec(preset="mnist")
