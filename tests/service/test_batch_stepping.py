"""Digest parity for micro-batched stepping, manager- and wire-level.

The contract: coalescing concurrent ``/step`` calls into per-market
sweeps is *pure execution policy*.  For every coalesce window and both
HTTP transports, each session's step-reply trace and final checkpoint
digest must be byte-identical to plain serial stepwise execution.
"""

import json
import threading

import pytest

from repro.service import (
    MarketPool,
    MarketSpec,
    SessionManager,
    SessionSpec,
    create_server,
)
from repro.service.async_server import AsyncMarketplaceServer

WINDOWS = [None, 0.001, 0.01]

MARKET_A = MarketSpec(dataset="synthetic", seed=0)
MARKET_B = MarketSpec(dataset="synthetic", seed=1)

#: Mixed-market workload: two digests interleaved, several runs each.
SESSION_SPECS = [
    SessionSpec(market=market, seed=0, run=run)
    for run in range(3)
    for market in (MARKET_A, MARKET_B)
]


@pytest.fixture(scope="module")
def pool():
    pool = MarketPool()
    pool.get(MARKET_A)
    pool.get(MARKET_B)
    return pool


def _canon(reply: dict) -> str:
    # Session ids are allocation-order bookkeeping (concurrent opens
    # race for them); everything else must match bit-for-bit.
    return json.dumps(
        {k: v for k, v in reply.items() if k != "session"}, sort_keys=True
    )


def _drive_manager(manager, session_id):
    """Step one session to completion; its reply trace + state digest."""
    trace = []
    while True:
        reply = manager.step(session_id)
        trace.append(_canon(reply))
        if reply["done"]:
            break
    return trace, manager.checkpoint(session_id)["digest"]


@pytest.fixture(scope="module")
def baseline(pool):
    """Serial stepwise execution, no coalescing: the reference traces."""
    manager = SessionManager(pool=pool)
    out = []
    for spec in SESSION_SPECS:
        out.append(_drive_manager(manager, manager.open_session(spec)))
    return out


def _parallel_drive(fn, count):
    """Run ``fn(i)`` in ``count`` threads after a common barrier."""
    results: list = [None] * count
    errors: list = []
    barrier = threading.Barrier(count)

    def work(i):
        try:
            barrier.wait(timeout=10.0)
            results[i] = fn(i)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(i,)) for i in range(count)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120.0)
    if errors:
        raise errors[0]
    return results


class TestManagerParity:
    @pytest.mark.parametrize("window", WINDOWS,
                             ids=["off", "1ms", "10ms"])
    def test_concurrent_mixed_markets_bit_identical(
        self, pool, baseline, window
    ):
        manager = SessionManager(pool=pool, coalesce_window=window)
        sids = [manager.open_session(spec) for spec in SESSION_SPECS]
        got = _parallel_drive(
            lambda i: _drive_manager(manager, sids[i]), len(sids)
        )
        assert got == baseline
        batching = manager.report()["batching"]
        if window is None:
            assert batching["window"] is None
            assert batching["sweeps"] == 0
        else:
            assert batching["window"] == window
            assert batching["sweeps"] >= 1

    def test_wide_window_actually_coalesces(self, pool, baseline):
        """With a generous window, barrier-released steppers must land
        in shared sweeps — this pins that the batching layer engages,
        not just that it is harmless."""
        manager = SessionManager(pool=pool, coalesce_window=0.05)
        sids = [manager.open_session(spec) for spec in SESSION_SPECS]
        got = _parallel_drive(
            lambda i: _drive_manager(manager, sids[i]), len(sids)
        )
        assert got == baseline
        batching = manager.report()["batching"]
        assert batching["coalesced"] >= 2
        assert batching["largest_sweep"] >= 2


def _drive_wire(transport, spec_dict):
    """Open/step/checkpoint one session over HTTP; trace + digest."""
    status, opened = transport.request("POST", "/v1/sessions",
                                       body=spec_dict)
    assert status == 201, opened
    sid = opened["session"]
    trace = []
    while True:
        status, reply = transport.request(
            "POST", f"/v1/sessions/{sid}/step"
        )
        assert status == 200, reply
        trace.append(_canon(reply))
        if reply["done"]:
            break
    status, state = transport.request("GET", f"/v1/sessions/{sid}/state")
    assert status == 200, state
    return trace, state["digest"]


def _wire_specs():
    return [
        {
            "market": spec.market.to_dict(),
            "seed": spec.seed,
            "run": spec.run,
        }
        for spec in SESSION_SPECS
    ]


@pytest.mark.parametrize("window", WINDOWS, ids=["off", "1ms", "10ms"])
@pytest.mark.parametrize("kind", ["threaded", "async"])
class TestWireParity:
    def test_concurrent_steps_match_serial_baseline(
        self, pool, baseline, window, kind
    ):
        from repro.client import HttpTransport

        manager = SessionManager(pool=pool, coalesce_window=window)
        if kind == "threaded":
            server = create_server(port=0, manager=manager)
            threading.Thread(
                target=server.serve_forever, daemon=True
            ).start()
            address = server.server_address[:2]
        else:
            server = AsyncMarketplaceServer(
                port=0, manager=manager, eviction_interval=0
            )
            address = server.start_background()
        url = "http://%s:%s" % address
        specs = _wire_specs()
        try:
            got = _parallel_drive(
                lambda i: _drive_wire(HttpTransport(url), specs[i]),
                len(specs),
            )
            assert got == baseline
        finally:
            if kind == "threaded":
                server.shutdown()
                server.server_close()
            else:
                server.shutdown(timeout=10.0)
