"""Registry semantics: collisions, and extensions propagating everywhere."""

import pytest

from repro.cli import build_parser
from repro.market import MarketConfig, MarketPreset, StrategicTaskParty
from repro.market.costs import ConstantCost
from repro.service import registry
from repro.service.specs import SessionSpec, SimulationSpec


class TestRegistryCore:
    def test_collision_is_hard_error(self):
        reg = registry.Registry("widget")
        reg.register("a", 1)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a", 2)
        assert reg.get("a") == 1

    def test_overwrite_opt_in(self):
        reg = registry.Registry("widget")
        reg.register("a", 1)
        reg.register("a", 2, overwrite=True)
        assert reg.get("a") == 2

    def test_unknown_lookup_lists_known(self):
        reg = registry.Registry("widget")
        reg.register("a", 1)
        with pytest.raises(ValueError, match=r"unknown widget 'b'; known: \['a'\]"):
            reg.get("b")

    def test_decorator_form(self):
        reg = registry.Registry("widget")

        @reg.register("f")
        def factory():
            return 42

        assert reg.get("f") is factory

    def test_builtin_registrations_present(self):
        assert set(registry.dataset_names()) >= {
            "adult", "credit", "synthetic", "titanic",
        }
        assert registry.base_model_names() == ("mlp", "random_forest")
        assert set(registry.task_strategy_names()) >= {
            "imperfect", "increase_price", "strategic",
        }
        assert set(registry.data_strategy_names()) >= {
            "imperfect", "random_bundle", "strategic",
        }
        assert set(registry.cost_names()) >= {
            "constant", "exponential", "linear", "none",
        }


class TestCliChoicesAreRegistrySourced:
    """`build_parser()` help text mirrors the registry contents."""

    def _help(self, command, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([command, "--help"])
        return capsys.readouterr().out

    def test_bargain_help_lists_registries(self, capsys):
        text = self._help("bargain", capsys)
        for name in registry.dataset_names():
            assert name in text
        for name in registry.base_model_names():
            assert name in text
        for name in registry.task_strategy_names():
            assert name in text
        for name in registry.data_strategy_names():
            assert name in text

    def test_simulate_help_lists_presets(self, capsys):
        text = self._help("simulate", capsys)
        for name in registry.preset_names():
            assert name in text


class TestExtensionsPropagate:
    """One registration shows up in CLI help, specs, and the simulator."""

    @pytest.fixture
    def tiny_dataset(self):
        name = "zz_test_ds"

        @registry.register_dataset(
            name,
            preset=MarketPreset(
                config=MarketConfig(
                    utility_rate=500.0, budget=6.0,
                    initial_rate=6.2, initial_base=0.95,
                ),
                reserved_price_params={
                    "rate_floor": 5.0, "rate_per_feature": 0.15,
                    "base_floor": 0.80, "base_per_feature": 0.020,
                },
                n_bundles=8,
            ),
            gain_scale=0.15,
            synthetic=True,
        )
        def _loader():  # pragma: no cover - synthetic entries skip loaders
            raise AssertionError("synthetic datasets have no loader")

        yield name
        registry.DATASETS.unregister(name)

    @pytest.fixture
    def tiny_task_strategy(self):
        name = "zz_eager"

        @registry.register_task_strategy(name)
        def _eager(ctx):
            return StrategicTaskParty(
                ctx.config, list(ctx.gains.values()),
                cost_model=ctx.cost_model, rng=ctx.rng,
            )

        yield name
        registry.TASK_STRATEGIES.unregister(name)

    @pytest.fixture
    def tiny_cost(self):
        name = "zz_flat"
        registry.register_cost(name, lambda a: ConstantCost(float(a)))
        yield name
        registry.COSTS.unregister(name)

    # ------------------------------------------------------------------
    def test_dataset_appears_in_cli_choices_and_help(self, tiny_dataset, capsys):
        args = build_parser().parse_args(["bargain", "--dataset", tiny_dataset])
        assert args.dataset == tiny_dataset
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bargain", "--help"])
        assert tiny_dataset in capsys.readouterr().out
        # ...and as a simulate --preset anchor.
        args = build_parser().parse_args(["simulate", "--preset", tiny_dataset])
        assert args.preset == tiny_dataset

    def test_unregistered_dataset_rejected_by_cli(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bargain", "--dataset", "zz_test_ds"])

    def test_strategy_appears_in_cli_spec_and_mix(self, tiny_task_strategy):
        args = build_parser().parse_args(["bargain", "--task", tiny_task_strategy])
        assert args.task == tiny_task_strategy
        spec = SessionSpec(market="x", task=tiny_task_strategy)
        assert spec.task == tiny_task_strategy
        sim = SimulationSpec(
            strategy_mix=((tiny_task_strategy, "strategic", 1.0),)
        )
        assert sim.population_spec().strategy_mix[0][0] == tiny_task_strategy

    def test_registered_strategy_drives_population_sessions(
        self, tiny_task_strategy
    ):
        from repro.simulate import PopulationSpec, SessionPool, sample_population

        spec = PopulationSpec(
            preset="synthetic",
            strategy_mix=((tiny_task_strategy, "strategic", 1.0),),
        )
        population = sample_population(spec, 6, seed=0)
        # Not the built-in strategic pair -> stepwise engine path.
        assert not population.kernel_eligible().any()
        result = SessionPool(population, batch_size=4).run()
        assert result.stepped_sessions == 6
        # The stepwise pool path is bit-identical to running the same
        # factory-built engines one by one.
        naive = [population.build_engine(i).run() for i in range(6)]
        assert result.status_names() == [o.status for o in naive]
        assert list(result.payment) == [o.payment for o in naive]

    def test_registered_cost_kind_routes_to_stepwise(self, tiny_cost):
        from repro.simulate import PopulationSpec, SessionPool, sample_population

        spec = PopulationSpec(
            preset="synthetic", cost_mix=((tiny_cost, 0.01, 1.0),)
        )
        population = sample_population(spec, 5, seed=0)
        assert (population.cost_kind == -1).all()
        assert not population.kernel_eligible().any()
        result = SessionPool(population, batch_size=4).run()
        assert result.stepped_sessions == 5
        assert population.cost_model(0)(3) == pytest.approx(0.01)
