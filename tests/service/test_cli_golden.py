"""Golden pins: CLI output is byte-identical across the service refactor.

The golden files were captured from the pre-service-layer CLI (markets
built directly through ``bargain_many`` / ad-hoc ``get_market`` calls).
The rebuilt commands construct specs and run through
``SessionManager``/``run_simulation``; for pinned seeds every
outcome-derived byte must match.  Only wall-clock lines (throughput,
oracle-build timings) are filtered on both sides.
"""

import pathlib

from repro.cli import main

GOLDEN = pathlib.Path(__file__).parent / "golden"

_WALL_CLOCK_PREFIXES = ("throughput:", "oracle build:")


def _deterministic(text: str) -> str:
    return "\n".join(
        line
        for line in text.splitlines()
        if not line.startswith(_WALL_CLOCK_PREFIXES)
    )


def _golden(name: str) -> str:
    return _deterministic((GOLDEN / name).read_text())


class TestSimulateGolden:
    def test_simulate_60_seed1(self, capsys):
        assert main(["simulate", "--sessions", "60", "--seed", "1"]) == 0
        assert _deterministic(capsys.readouterr().out) == _golden(
            "simulate_60_seed1.txt"
        )

    def test_simulate_mix_30_seed3(self, capsys):
        assert main([
            "simulate", "--sessions", "30", "--seed", "3",
            "--mix", "strategic:strategic=0.7,increase_price:strategic=0.3",
            "--cost", "none=0.8,linear:0.02=0.2",
        ]) == 0
        assert _deterministic(capsys.readouterr().out) == _golden(
            "simulate_mix_30_seed3.txt"
        )


class TestBargainGolden:
    def test_bargain_titanic_3_seed1(self, capsys):
        assert main(["bargain", "--runs", "3", "--seed", "1", "--no-cache"]) == 0
        out = _deterministic(capsys.readouterr().out)
        assert out == _golden("bargain_titanic_3_seed1.txt")
