"""HTTP smoke tests: a full bargain to acceptance over localhost."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import MarketPool, SessionManager, create_server
from repro.service.specs import MarketSpec
from repro.utils.rng import spawn

SPEC_DICT = {"dataset": "synthetic", "seed": 0}


@pytest.fixture(scope="module")
def service():
    pool = MarketPool()
    manager = SessionManager(pool=pool)
    server = create_server(port=0, manager=manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield {"url": f"http://{host}:{port}", "pool": pool, "manager": manager}
    server.shutdown()
    server.server_close()


def _call(url, method="GET", body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


class TestRoutes:
    def test_health(self, service):
        status, payload = _call(f"{service['url']}/v1/health")
        assert status == 200 and payload == {"ok": True, "version": "v1"}

    def test_legacy_get_redirects_to_v1(self, service):
        # urllib follows the 301 transparently, landing on /v1/health.
        status, payload = _call(f"{service['url']}/health")
        assert status == 200 and payload["version"] == "v1"

    def test_market_build_and_warm_flag(self, service):
        status, first = _call(
            f"{service['url']}/v1/markets", "POST", SPEC_DICT
        )
        assert status == 200
        assert first["name"] == "synthetic"
        assert first["n_bundles"] == 24
        assert first["target_gain"] > 0
        status, again = _call(f"{service['url']}/v1/markets", "POST", SPEC_DICT)
        assert again["market"] == first["market"]
        assert not first["cached"] and again["cached"]

    def test_full_bargain_to_acceptance(self, service):
        """Open a session and step it round by round until the deal."""
        status, opened = _call(
            f"{service['url']}/v1/sessions", "POST",
            {"market": SPEC_DICT, "seed": 0},
        )
        assert status == 201
        session_id = opened["session"]
        assert opened["round"] == 0 and not opened["done"]
        rounds = 0
        while True:
            status, state = _call(
                f"{service['url']}/v1/sessions/{session_id}/step", "POST"
            )
            assert status == 200
            rounds += 1
            assert rounds <= 600, "session failed to terminate"
            if state["done"]:
                break
        outcome = state["outcome"]
        assert outcome["status"] == "accepted"
        assert outcome["payment"] > 0 and outcome["delta_g"] > 0
        assert state["round"] == rounds
        # The transcript must equal the in-process engine, bit for bit.
        market = service["pool"].get(MarketSpec.from_dict(SPEC_DICT))
        expected = market.bargain(seed=0)
        assert outcome["n_rounds"] == expected.n_rounds
        assert outcome["payment"] == expected.payment
        assert outcome["quote"]["cap"] == expected.quote.cap
        status, closed = _call(
            f"{service['url']}/v1/sessions/{session_id}", "DELETE"
        )
        assert status == 200 and closed["closed"]

    def test_step_until_done_and_by_market_digest(self, service):
        _, built = _call(f"{service['url']}/v1/markets", "POST", SPEC_DICT)
        _, opened = _call(
            f"{service['url']}/v1/sessions", "POST",
            {"market": built["market"], "seed": 0, "run": 4},
        )
        _, state = _call(
            f"{service['url']}/v1/sessions/{opened['session']}/step", "POST",
            {"until_done": True},
        )
        assert state["done"] and "outcome" in state

    def test_batched_rounds(self, service):
        _, opened = _call(
            f"{service['url']}/v1/sessions", "POST",
            {"market": SPEC_DICT, "seed": 0, "run": 5},
        )
        _, state = _call(
            f"{service['url']}/v1/sessions/{opened['session']}/step", "POST",
            {"rounds": 10},
        )
        assert state["round"] == 10 or state["done"]

    def test_report(self, service):
        status, report = _call(f"{service['url']}/v1/report")
        assert status == 200
        assert report["sessions"]["opened"] >= 1
        assert report["outcomes"]["accepted"] >= 1

    def test_errors(self, service):
        status, payload = _call(
            f"{service['url']}/v1/markets", "POST", {"dataset": "mnist"}
        )
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"
        assert "unknown dataset" in payload["error"]["message"]
        status, payload = _call(
            f"{service['url']}/v1/sessions/shifty/step", "POST"
        )
        assert status == 404
        assert payload["error"]["code"] == "not_found"
        assert "unknown session" in payload["error"]["message"]
        status, payload = _call(f"{service['url']}/v1/nope")
        assert status == 404
        status, payload = _call(
            f"{service['url']}/v1/sessions", "POST",
            {"market": SPEC_DICT, "task": "oracle_cheat"},
        )
        assert status == 400
        assert "unknown task strategy" in payload["error"]["message"]
        # Wrong-typed spec fields must 400, not drop the connection.
        status, payload = _call(
            f"{service['url']}/v1/markets", "POST",
            {"dataset": "synthetic", "n_bundles": "ten"},
        )
        assert status == 400 and "error" in payload


class TestHttpMatchesCli:
    def test_http_session_reproduces_bargain_outcome(self, service):
        """`POST /v1/sessions` + `/step` reproduces `repro bargain` runs."""
        _, opened = _call(
            f"{service['url']}/v1/sessions", "POST",
            {"market": SPEC_DICT, "seed": 1, "run": 0},
        )
        _, state = _call(
            f"{service['url']}/v1/sessions/{opened['session']}/step", "POST",
            {"until_done": True},
        )
        market = service["pool"].get(MarketSpec.from_dict(SPEC_DICT))
        expected = market.bargain(seed=spawn(1, "run", 0))
        assert state["outcome"]["n_rounds"] == expected.n_rounds
        assert state["outcome"]["payment"] == expected.payment
        assert state["outcome"]["status"] == expected.status
