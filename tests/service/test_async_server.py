"""Asyncio transport behaviour: protocol, drain, periodic eviction.

Payload parity with the threaded server is covered by
``test_batch_stepping.py``; this file pins the transport-level
behaviours the event loop owns — body enforcement, legacy envelopes,
streaming, the 503 drain refusal, and the idle-eviction sweep that must
run without any ``open_session`` traffic.
"""

import http.client
import json
import threading
import time

import pytest

from repro.service import (
    MarketPool,
    MarketSpec,
    SessionManager,
    SessionSpec,
    create_server,
)
from repro.service.async_server import AsyncMarketplaceServer
from repro.service.server import start_eviction_sweeper

SPEC = MarketSpec(dataset="synthetic", seed=0)
SPEC_DICT = {"dataset": "synthetic", "seed": 0}


@pytest.fixture(scope="module")
def pool():
    pool = MarketPool()
    pool.get(SPEC)
    return pool


@pytest.fixture(scope="module")
def service(pool, tmp_path_factory):
    from repro.jobs import JobStore
    from repro.service import JobService

    store = JobStore(
        str(tmp_path_factory.mktemp("async-server") / "jobs.sqlite3")
    )
    server = AsyncMarketplaceServer(
        port=0,
        manager=SessionManager(pool=pool),
        jobs=JobService(store, shards=1),
        eviction_interval=0,
    )
    host, port = server.start_background()
    yield {"server": server, "host": host, "port": port}
    server.shutdown(timeout=10.0)


def _call(service, method, path, body=None, headers=None):
    conn = http.client.HTTPConnection(
        service["host"], service["port"], timeout=30
    )
    try:
        blob = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=blob, headers=headers or {})
        response = conn.getresponse()
        raw = response.read()
        payload = json.loads(raw.decode()) if raw else {}
        return response.status, payload, dict(response.getheaders())
    finally:
        conn.close()


class TestProtocol:
    def test_health_and_session_lifecycle(self, service):
        status, payload, _ = _call(service, "GET", "/v1/healthz")
        assert status == 200 and payload["ok"]

        status, opened, _ = _call(
            service, "POST", "/v1/sessions",
            body={"market": SPEC_DICT, "seed": 0},
        )
        assert status == 201
        sid = opened["session"]
        status, stepped, _ = _call(
            service, "POST", f"/v1/sessions/{sid}/step",
            body={"until_done": True},
        )
        assert status == 200 and stepped["done"]
        status, _, _ = _call(service, "DELETE", f"/v1/sessions/{sid}")
        assert status == 200

    def test_keep_alive_carries_multiple_requests(self, service):
        conn = http.client.HTTPConnection(
            service["host"], service["port"], timeout=30
        )
        try:
            for _ in range(3):
                conn.request("GET", "/v1/health")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
                assert not response.will_close
        finally:
            conn.close()

    def test_unknown_route_is_404_envelope(self, service):
        status, payload, _ = _call(service, "GET", "/v1/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_legacy_get_redirects_post_is_gone(self, service):
        status, payload, headers = _call(service, "GET", "/health")
        assert status == 301
        assert headers["Location"] == "/v1/health"
        assert payload["error"]["code"] == "moved"
        status, payload, _ = _call(service, "POST", "/sessions", body={})
        assert status == 410
        assert payload["error"]["detail"]["location"] == "/v1/sessions"

    def test_malformed_json_body_is_400(self, service):
        conn = http.client.HTTPConnection(
            service["host"], service["port"], timeout=30
        )
        try:
            conn.request("POST", "/v1/markets", body=b"{nope",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            payload = json.loads(response.read().decode())
            assert response.status == 400
            assert payload["error"]["code"] == "invalid_request"
        finally:
            conn.close()

    def test_oversized_content_length_is_413(self, service):
        status, payload, _ = _call(
            service, "POST", "/v1/markets",
            headers={"Content-Length": str(64 * 1024 * 1024)},
        )
        assert status == 413
        assert payload["error"]["code"] == "payload_too_large"

    def test_chunked_body_is_411(self, service):
        status, payload, _ = _call(
            service, "POST", "/v1/markets",
            headers={"Transfer-Encoding": "chunked"},
        )
        assert status == 411
        assert payload["error"]["code"] == "length_required"

    def test_job_events_stream(self, service):
        status, job, _ = _call(
            service, "POST", "/v1/simulations",
            body={"sessions": 16, "seed": 0, "shards": 1},
        )
        assert status == 202, job
        job_id = job["job"]
        conn = http.client.HTTPConnection(
            service["host"], service["port"], timeout=60
        )
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == (
                "application/x-ndjson"
            )
            events = [
                json.loads(line) for line in response if line.strip()
            ]
        finally:
            conn.close()
        assert events, "stream produced no events"
        assert events[-1]["event"] == "end"
        assert events[-1]["status"] == "done"
        assert "digest" in events[-1]


class TestDrain:
    def test_draining_refuses_with_retry_after(self, pool):
        server = AsyncMarketplaceServer(
            port=0, manager=SessionManager(pool=pool), eviction_interval=0
        )
        service = dict(zip(("host", "port"), server.start_background()))
        try:
            status, payload, _ = _call(service, "GET", "/v1/health")
            assert status == 200
            server.draining = True
            status, payload, headers = _call(service, "GET", "/v1/health")
            assert status == 503
            assert payload["error"]["code"] == "draining"
            assert headers["Retry-After"] == "1"
            assert "close" in headers.get("Connection", "").lower()
        finally:
            server.draining = False
            server.shutdown(timeout=10.0)

    def test_shutdown_stops_accepting(self, pool):
        server = AsyncMarketplaceServer(
            port=0, manager=SessionManager(pool=pool), eviction_interval=0
        )
        service = dict(zip(("host", "port"), server.start_background()))
        assert _call(service, "GET", "/v1/health")[0] == 200
        server.shutdown(timeout=10.0)
        with pytest.raises(OSError):
            _call(service, "GET", "/v1/health")


class TestPeriodicEviction:
    def test_async_sweeper_evicts_without_open_session(self, pool):
        """Regression: idle sessions used to be reaped only from inside
        ``open_session`` — a quiet server leaked them forever."""
        manager = SessionManager(pool=pool, idle_ttl=0.05)
        server = AsyncMarketplaceServer(
            port=0, manager=manager, eviction_interval=0.05
        )
        service = dict(zip(("host", "port"), server.start_background()))
        try:
            status, opened, _ = _call(
                service, "POST", "/v1/sessions",
                body={"market": SPEC_DICT, "seed": 0},
            )
            assert status == 201
            sid = opened["session"]
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if sid not in manager.session_ids():
                    break
                time.sleep(0.02)
            assert sid not in manager.session_ids()
            assert manager.report()["sessions"]["evicted"] >= 1
        finally:
            server.shutdown(timeout=10.0)

    def test_threaded_sweeper_evicts_without_open_session(self, pool):
        manager = SessionManager(pool=pool, idle_ttl=0.05)
        stop = start_eviction_sweeper(manager, 0.05)
        try:
            sid = manager.open_session(SessionSpec(market=SPEC, seed=0))
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if sid not in manager.session_ids():
                    break
                time.sleep(0.02)
            assert sid not in manager.session_ids()
        finally:
            stop.set()

    def test_sweeper_disabled_interval_zero(self, pool):
        manager = SessionManager(pool=pool, idle_ttl=0.01)
        stop = start_eviction_sweeper(manager, 0)
        assert stop.is_set()  # never started
        sid = manager.open_session(SessionSpec(market=SPEC, seed=0))
        time.sleep(0.05)
        assert sid in manager.session_ids()  # nothing sweeps

    def test_server_without_idle_ttl_has_no_sweeper(self, pool):
        manager = SessionManager(pool=pool)  # no ttl -> nothing to sweep
        stop = start_eviction_sweeper(manager, None)
        assert stop.is_set()


class TestParityWithThreadedServer:
    def test_report_payloads_identical(self, pool, tmp_path):
        """Same manager state through both transports produces the
        same wire payload: the transports are pure glue."""
        manager = SessionManager(pool=pool)
        threaded = create_server(port=0, manager=manager)
        threading.Thread(
            target=threaded.serve_forever, daemon=True
        ).start()
        asyncio_server = AsyncMarketplaceServer(
            port=0, manager=manager, eviction_interval=0
        )
        try:
            t_service = dict(
                zip(("host", "port"), threaded.server_address[:2])
            )
            a_service = dict(
                zip(("host", "port"), asyncio_server.start_background())
            )
            _, t_report, _ = _call(t_service, "GET", "/v1/report")
            _, a_report, _ = _call(a_service, "GET", "/v1/report")
            assert t_report == a_report
        finally:
            threaded.shutdown()
            threaded.server_close()
            asyncio_server.shutdown(timeout=10.0)
