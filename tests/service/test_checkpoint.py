"""Session checkpoint/restore through the SessionManager.

The manager-level contract behind ``GET/PUT /sessions/<id>/state``:
checkpoints are self-contained JSON payloads (full market spec inlined)
that restore — in a *different* manager with a *cold* market pool — to
a session whose remaining trace is bit-identical, verified against the
checkpoint's content digest.
"""

import copy
import json

import pytest

from repro.service import MarketPool, MarketSpec, SessionManager, SessionSpec

SPEC = MarketSpec(dataset="synthetic", seed=3)


def _session(manager, **overrides):
    defaults = dict(market=SPEC, seed=0)
    defaults.update(overrides)
    return manager.open_session(SessionSpec(**defaults))


class TestCheckpoint:
    def test_payload_is_self_contained_json(self):
        manager = SessionManager(pool=MarketPool())
        sid = _session(manager)
        manager.step(sid, rounds=2)
        payload = manager.checkpoint(sid)
        # Must survive a JSON wire trip verbatim.
        assert json.loads(json.dumps(payload)) == payload
        # The market is inlined as a full spec dict, not a digest.
        assert payload["spec"]["market"]["dataset"] == "synthetic"
        assert payload["state"]["round_number"] == 2
        assert payload["digest"]

    def test_checkpoint_inlines_market_for_digest_sessions(self):
        pool = MarketPool()
        manager = SessionManager(pool=pool)
        pool.get(SPEC)
        sid = manager.open_session(SessionSpec(market=SPEC.digest(), seed=0))
        payload = manager.checkpoint(sid)
        assert payload["spec"]["market"] == SPEC.to_dict()

    def test_adhoc_market_cannot_checkpoint(self):
        pool = MarketPool()
        manager = SessionManager(pool=pool)
        digest = pool.add(pool.get(SPEC))  # hand-injected: no spec recorded
        sid = manager.open_session(SessionSpec(market=digest, seed=0))
        with pytest.raises(ValueError, match="hand-injected"):
            manager.checkpoint(sid)


class TestRestore:
    def test_cold_pool_restore_resumes_identical_game(self):
        """The cross-process scenario: the target pool rebuilds the
        market from the inlined spec and the session plays out exactly
        as it would have in the source process."""
        source = SessionManager(pool=MarketPool())
        reference = SessionManager(pool=MarketPool())
        sid = _session(source, run=4)
        ref = _session(reference, run=4)
        source.step(sid, rounds=1)
        payload = manager_payload = source.checkpoint(sid)

        target = SessionManager(pool=MarketPool())  # cold: must rebuild
        rid = target.restore(manager_payload)
        final = target.run(rid)
        expected = reference.run(ref)
        assert final["done"] and expected["done"]
        assert final["outcome"] == expected["outcome"]
        assert target.checkpoint(rid)["state"]["history"] == \
            reference.checkpoint(ref)["state"]["history"]
        assert payload["state"]["history"] == \
            target.checkpoint(rid)["state"]["history"][:1]

    def test_terminal_state_restores_as_terminal(self):
        source = SessionManager(pool=MarketPool())
        sid = _session(source)
        source.run(sid)
        payload = source.checkpoint(sid)
        target = SessionManager(pool=MarketPool())
        rid = target.restore(payload)
        status = target.status(rid)
        assert status["done"]
        assert status["outcome"] == source.status(sid)["outcome"]

    def test_tampered_state_rejected(self):
        source = SessionManager(pool=MarketPool())
        sid = _session(source)
        source.step(sid, rounds=2)
        payload = copy.deepcopy(source.checkpoint(sid))
        payload["state"]["quote"]["base"] += 0.001
        with pytest.raises(ValueError, match="digest mismatch"):
            SessionManager(pool=MarketPool()).restore(payload)

    def test_wrong_seed_fails_replay_verification(self):
        """A checkpoint whose spec drifted from its state must not
        silently resume a different game."""
        source = SessionManager(pool=MarketPool())
        sid = _session(source, task="increase_price", seed=11)
        source.step(sid, rounds=3)
        payload = copy.deepcopy(source.checkpoint(sid))
        payload["spec"]["seed"] = 12  # different RNG streams
        payload["digest"] = payload["digest"]  # digest still matches state
        with pytest.raises(ValueError, match="does not replay"):
            SessionManager(pool=MarketPool()).restore(payload)

    def test_restore_under_explicit_id_and_collision(self):
        source = SessionManager(pool=MarketPool())
        sid = _session(source)
        source.step(sid)
        payload = source.checkpoint(sid)
        target = SessionManager(pool=MarketPool())
        rid = target.restore(payload, session_id="shard3-s000042")
        assert rid == "shard3-s000042"
        assert target.status(rid)["round"] == 1
        with pytest.raises(RuntimeError, match="already resident"):
            target.restore(payload, session_id="shard3-s000042")

    def test_unsupported_version_rejected(self):
        source = SessionManager(pool=MarketPool())
        sid = _session(source)
        payload = source.checkpoint(sid)
        payload["version"] = 2
        with pytest.raises(ValueError, match="checkpoint version"):
            SessionManager(pool=MarketPool()).restore(payload)
