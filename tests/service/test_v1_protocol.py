"""Wire-protocol contract: versioning, envelopes, limits, pagination.

Everything here talks raw HTTP (``http.client`` / raw sockets, no
redirect-following) because the subject *is* the wire: what exactly a
legacy GET receives, what an oversized Content-Length triggers, how a
page cursor behaves.
"""

import http.client
import json
import socket
import threading

import pytest

from repro.jobs import JobStore
from repro.service import JobService, MarketPool, SessionManager, create_server
from repro.service.server import MAX_BODY_BYTES


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    store = JobStore(str(tmp_path_factory.mktemp("v1") / "jobs.sqlite3"))
    server = create_server(
        port=0,
        manager=SessionManager(pool=MarketPool()),
        jobs=JobService(store, shards=2),
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    yield {"host": host, "port": port, "store": store, "server": server}
    server.shutdown()
    server.server_close()


def _request(service, method, path, body=None, headers=None):
    """One exchange without redirect following; returns (status, headers,
    payload)."""
    conn = http.client.HTTPConnection(service["host"], service["port"],
                                      timeout=30)
    try:
        blob = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=blob, headers=headers or {})
        response = conn.getresponse()
        raw = response.read()
        payload = json.loads(raw.decode()) if raw else {}
        return response.status, dict(response.getheaders()), payload
    finally:
        conn.close()


def _raw_exchange(service, blob: bytes, *, shutdown_write: bool = False) -> bytes:
    """Ship raw bytes, return the raw reply (for protocol-violation tests)."""
    with socket.create_connection(
        (service["host"], service["port"]), timeout=30
    ) as sock:
        sock.sendall(blob)
        if shutdown_write:
            sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    return b"".join(chunks)


class TestLegacyDeprecation:
    def test_legacy_get_is_301_with_location_and_envelope(self, service):
        status, headers, payload = _request(service, "GET", "/healthz")
        assert status == 301
        assert headers["Location"] == "/v1/healthz"
        assert payload["error"]["code"] == "moved"
        assert payload["error"]["detail"]["location"] == "/v1/healthz"

    def test_legacy_mutation_is_410_gone(self, service):
        for method, path in (("POST", "/markets"), ("POST", "/simulations"),
                             ("PUT", "/sessions/s0/state"),
                             ("DELETE", "/sessions/s0")):
            status, _, payload = _request(service, method, path)
            assert status == 410, (method, path)
            assert payload["error"]["code"] == "gone"
            assert payload["error"]["detail"]["location"] == "/v1" + path

    def test_v1_paths_are_not_redirected(self, service):
        status, _, payload = _request(service, "GET", "/v1/health")
        assert status == 200 and payload["version"] == "v1"


class TestEnvelopeSemantics:
    def test_unknown_ids_are_404_on_every_method(self, service):
        cases = (
            ("GET", "/v1/sessions/snope"),
            ("POST", "/v1/sessions/snope/step"),
            ("GET", "/v1/sessions/snope/state"),
            ("DELETE", "/v1/sessions/snope"),
            ("GET", "/v1/jobs/jnope"),
            ("POST", "/v1/jobs/jnope/resume"),
            ("GET", "/v1/jobs/jnope/events"),
        )
        for method, path in cases:
            status, _, payload = _request(service, method, path)
            assert status == 404, (method, path, payload)
            assert payload["error"]["code"] == "not_found", (method, path)

    def test_wrong_method_is_405_with_allowed_list(self, service):
        status, _, payload = _request(service, "DELETE", "/v1/markets")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"
        assert payload["error"]["detail"]["allowed"] == ["POST"]

    def test_restore_conflict_is_409(self, service):
        status, _, opened = _request(
            service, "POST", "/v1/sessions",
            body={"market": {"dataset": "synthetic", "seed": 0}, "seed": 0},
        )
        assert status == 201
        sid = opened["session"]
        status, _, checkpoint = _request(
            service, "GET", f"/v1/sessions/{sid}/state"
        )
        assert status == 200
        status, _, payload = _request(
            service, "PUT", f"/v1/sessions/{sid}/state", body=checkpoint
        )
        assert status == 409
        assert payload["error"]["code"] == "conflict"
        _request(service, "DELETE", f"/v1/sessions/{sid}")

    def test_bad_query_parameter_is_400(self, service):
        status, _, payload = _request(service, "GET", "/v1/jobs?limit=lots")
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"
        status, _, payload = _request(service, "GET", "/v1/jobs?limit=0")
        assert status == 400


class TestBodyLimits:
    def test_oversized_content_length_is_413_without_reading(self, service):
        huge = MAX_BODY_BYTES + 1
        reply = _raw_exchange(
            service,
            (f"POST /v1/markets HTTP/1.1\r\n"
             f"Host: x\r\nContent-Length: {huge}\r\n\r\n").encode(),
        )
        head, _, body = reply.partition(b"\r\n\r\n")
        assert b"413" in head.splitlines()[0]
        payload = json.loads(body.decode())
        assert payload["error"]["code"] == "payload_too_large"
        assert payload["error"]["detail"]["max_bytes"] == MAX_BODY_BYTES

    def test_malformed_content_length_is_411(self, service):
        reply = _raw_exchange(
            service,
            b"POST /v1/markets HTTP/1.1\r\n"
            b"Host: x\r\nContent-Length: lots\r\n\r\n",
        )
        head, _, body = reply.partition(b"\r\n\r\n")
        assert b"411" in head.splitlines()[0]
        assert json.loads(body.decode())["error"]["code"] == "length_required"

    def test_chunked_request_body_is_411(self, service):
        reply = _raw_exchange(
            service,
            b"POST /v1/markets HTTP/1.1\r\n"
            b"Host: x\r\nTransfer-Encoding: chunked\r\n\r\n"
            b"0\r\n\r\n",
        )
        head, _, body = reply.partition(b"\r\n\r\n")
        assert b"411" in head.splitlines()[0]

    def test_truncated_body_is_400_not_a_hang(self, service):
        reply = _raw_exchange(
            service,
            b"POST /v1/markets HTTP/1.1\r\n"
            b"Host: x\r\nContent-Length: 4096\r\n\r\n"
            b'{"dataset"',
            shutdown_write=True,
        )
        head, _, body = reply.partition(b"\r\n\r\n")
        assert b"400" in head.splitlines()[0]
        assert b"declared" in body

    def test_invalid_json_body_is_400(self, service):
        blob = b"{nope"
        reply = _raw_exchange(
            service,
            (b"POST /v1/markets HTTP/1.1\r\nHost: x\r\n"
             + f"Content-Length: {len(blob)}\r\n\r\n".encode() + blob),
        )
        head, _, body = reply.partition(b"\r\n\r\n")
        assert b"400" in head.splitlines()[0]
        assert json.loads(body.decode())["error"]["code"] == "invalid_request"


class TestJobsPagination:
    def _seed_jobs(self, service, n=5):
        ids = []
        for seed in range(n):
            record = service["store"].submit(
                "simulation", {"sessions": 10, "seed": seed}, [(0, 10)]
            )
            ids.append(record.job_id)
        return sorted(set(ids))

    def test_cursor_walk_is_deterministic_and_complete(self, service):
        ids = self._seed_jobs(service)
        seen, after = [], None
        while True:
            path = "/v1/jobs?limit=2" + (f"&after={after}" if after else "")
            status, _, page = _request(service, "GET", path)
            assert status == 200
            assert page["count"] == len(page["jobs"]) <= 2
            seen += [job["job"] for job in page["jobs"]]
            after = page["next"]
            if after is None:
                break
        assert [j for j in seen if j in ids] == ids
        assert seen == sorted(seen), "pages must be job-id ordered"

    def test_full_listing_has_no_next(self, service):
        self._seed_jobs(service)
        status, _, page = _request(service, "GET", "/v1/jobs?limit=1000")
        assert status == 200 and page["next"] is None
