"""SessionManager and MarketPool behaviour (concurrency, eviction)."""

import threading

import pytest

from repro.market.market import Market
from repro.service import MarketPool, MarketSpec, SessionManager, SessionSpec
from repro.utils.rng import spawn

SPEC = MarketSpec(dataset="synthetic", seed=0)


@pytest.fixture(scope="module")
def pool():
    return MarketPool()


@pytest.fixture
def manager(pool):
    return SessionManager(pool=pool)


class TestMarketPool:
    def test_get_builds_once(self, pool):
        first = pool.get(SPEC)
        again = pool.get(SPEC)
        assert first is again
        assert pool.contains(SPEC)
        assert SPEC.digest() in pool.markets()

    def test_distinct_specs_distinct_markets(self, pool):
        other = pool.get(MarketSpec(dataset="synthetic", seed=1))
        assert other is not pool.get(SPEC)

    def test_lookup_unknown_digest(self, pool):
        with pytest.raises(ValueError, match="no market"):
            pool.lookup("deadbeef")

    def test_adhoc_keys_never_collide(self):
        """Regression: auto keys were ``adhoc-{name}-{id(market):x}`` —
        ``id()`` is reused after GC (and identical for the *same*
        object), so a re-added market silently replaced the first entry
        under its own key.  Keys must be process-unique."""
        fresh = MarketPool()
        market = Market.from_spec(SPEC)
        first = fresh.add(market)
        second = fresh.add(market)  # same object, same id(): worst case
        assert first != second
        assert fresh.lookup(first) is market
        assert fresh.lookup(second) is market
        assert len(fresh) == 2
        # And across many churned objects, still no duplicates.
        keys = {fresh.add(Market.from_spec(SPEC)) for _ in range(20)}
        assert len(keys) == 20

    def test_concurrent_get_single_build(self, monkeypatch):
        fresh = MarketPool()
        builds = []
        gate = threading.Event()
        real = Market.from_spec.__func__

        def slow_build(cls, spec, **kwargs):
            gate.wait(timeout=5.0)
            builds.append(spec.digest())
            return real(cls, spec, **kwargs)

        monkeypatch.setattr(Market, "from_spec", classmethod(slow_build))
        results = []
        threads = [
            threading.Thread(target=lambda: results.append(fresh.get(SPEC)))
            for _ in range(6)
        ]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join(timeout=10.0)
        assert len(builds) == 1
        assert len(results) == 6 and all(m is results[0] for m in results)


class TestSessionLifecycle:
    def test_open_step_status_close(self, manager):
        session_id = manager.open_session(SessionSpec(market=SPEC, seed=0))
        status = manager.status(session_id)
        assert status["round"] == 0 and not status["done"]
        assert status["quote"]["rate"] > 0
        stepped = manager.step(session_id)
        assert stepped["round"] == 1
        final = manager.run(session_id)
        assert final["done"] and final["outcome"]["status"] == "accepted"
        # Stepping a terminal session is a no-op, not an error.
        assert manager.step(session_id)["round"] == final["round"]
        assert manager.close(session_id)
        with pytest.raises(KeyError, match="unknown session"):
            manager.status(session_id)

    def test_outcome_matches_direct_market_bargain(self, manager, pool):
        market = pool.get(SPEC)
        expected = market.bargain(seed=spawn(0, "run", 2))
        session_id = manager.open_session(
            SessionSpec(market=SPEC, seed=0, run=2)
        )
        manager.run(session_id)
        outcome = manager.outcome(session_id)
        assert outcome.status == expected.status
        assert outcome.n_rounds == expected.n_rounds
        assert outcome.payment == expected.payment
        assert outcome.quote == expected.quote

    def test_market_referenced_by_digest(self, manager, pool):
        pool.get(SPEC)
        session_id = manager.open_session(
            SessionSpec(market=SPEC.digest(), seed=0)
        )
        assert manager.status(session_id)["market"] == SPEC.digest()

    def test_unknown_market_digest_rejected(self, manager):
        with pytest.raises(ValueError, match="no market"):
            manager.open_session(SessionSpec(market="deadbeef"))

    def test_report_counts(self, pool):
        manager = SessionManager(pool=pool)
        sid = manager.open_session(SessionSpec(market=SPEC, seed=0, run=1))
        manager.run(sid)
        report = manager.report()
        assert report["sessions"]["opened"] == 1
        assert report["sessions"]["active"] == 0
        assert sum(report["outcomes"].values()) == 1


class TestConcurrentSessions:
    def test_two_sessions_share_one_market_across_threads(self, pool):
        """Interleaved concurrent stepping must equal sequential play."""
        manager = SessionManager(pool=pool)
        market = pool.get(SPEC)
        runs = (10, 11)
        expected = {
            run: market.bargain(seed=spawn(0, "run", run)) for run in runs
        }
        sids = {
            run: manager.open_session(SessionSpec(market=SPEC, seed=0, run=run))
            for run in runs
        }
        errors = []

        def drive(run):
            try:
                while not manager.step(sids[run])["done"]:
                    pass
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=drive, args=(run,)) for run in runs]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors
        for run in runs:
            outcome = manager.outcome(sids[run])
            assert outcome.status == expected[run].status
            assert outcome.n_rounds == expected[run].n_rounds
            assert outcome.payment == expected[run].payment


class TestEviction:
    def test_idle_sessions_evicted(self, pool):
        now = [0.0]
        manager = SessionManager(pool=pool, idle_ttl=10.0, clock=lambda: now[0])
        stale = manager.open_session(SessionSpec(market=SPEC, seed=0))
        now[0] = 5.0
        live = manager.open_session(SessionSpec(market=SPEC, seed=0, run=1))
        manager.step(live)  # refreshes last_active to t=5
        now[0] = 12.0  # stale idle 12s > ttl, live idle 7s
        evicted = manager.evict_idle()
        assert evicted == [stale]
        with pytest.raises(KeyError):
            manager.status(stale)
        assert manager.status(live)["round"] == 1
        assert manager.report()["sessions"]["evicted"] == 1

    def test_open_session_sweeps_idle(self, pool):
        now = [0.0]
        manager = SessionManager(pool=pool, idle_ttl=1.0, clock=lambda: now[0])
        stale = manager.open_session(SessionSpec(market=SPEC, seed=0))
        now[0] = 5.0
        manager.open_session(SessionSpec(market=SPEC, seed=0, run=1))
        assert stale not in manager.session_ids()

    def test_session_limit(self, pool):
        manager = SessionManager(pool=pool, max_sessions=1)
        manager.open_session(SessionSpec(market=SPEC, seed=0))
        with pytest.raises(RuntimeError, match="session limit"):
            manager.open_session(SessionSpec(market=SPEC, seed=0, run=1))

    def test_restored_checkpoint_survives_idle_eviction(self, pool):
        """Regression: a session restored from a persisted checkpoint
        must not be reaped before its client first reconnects — however
        long the restore-to-reconnect gap — while ordinary sessions
        around it still age out."""
        now = [0.0]
        manager = SessionManager(pool=pool, idle_ttl=10.0, clock=lambda: now[0])
        sid = manager.open_session(SessionSpec(market=SPEC, seed=0))
        manager.step(sid)
        payload = manager.checkpoint(sid)
        manager.close(sid)
        restored = manager.restore(payload)
        bystander = manager.open_session(SessionSpec(market=SPEC, seed=0, run=1))
        now[0] = 1000.0  # both idle far beyond the ttl
        assert manager.evict_idle() == [bystander]
        assert restored in manager.session_ids()
        # First client contact lifts the grace period: from then on the
        # restored session ages like any other.
        manager.step(restored)
        now[0] = 2000.0
        assert manager.evict_idle() == [restored]


class TestCoalesceConfig:
    def test_window_must_be_non_negative(self, pool):
        with pytest.raises(ValueError, match="coalesce_window"):
            SessionManager(pool=pool, coalesce_window=-0.001)

    def test_batch_limit_must_be_positive(self, pool):
        with pytest.raises(ValueError, match="batch_limit"):
            SessionManager(pool=pool, coalesce_window=0.001, batch_limit=0)

    def test_zero_window_means_off(self, pool):
        manager = SessionManager(pool=pool, coalesce_window=0.0)
        sid = manager.open_session(SessionSpec(market=SPEC, seed=0))
        manager.step(sid)
        batching = manager.report()["batching"]
        assert batching["window"] is None
        assert batching["sweeps"] == 0

    def test_until_done_through_the_batcher(self, pool):
        """`run` (until_done) must coalesce exactly like single steps
        and finish with the same outcome as the stepwise path."""
        plain = SessionManager(pool=pool)
        want = plain.run(
            plain.open_session(SessionSpec(market=SPEC, seed=0, run=7))
        )
        batched = SessionManager(pool=pool, coalesce_window=0.02)
        sids = [
            batched.open_session(SessionSpec(market=SPEC, seed=0, run=7))
            for _ in range(4)
        ]
        results = [None] * 4
        barrier = threading.Barrier(4)

        def work(i):
            barrier.wait(timeout=10.0)
            results[i] = batched.run(sids[i])

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        for got in results:
            assert got is not None
            assert {k: v for k, v in got.items() if k != "session"} == (
                {k: v for k, v in want.items() if k != "session"}
            )
        assert batched.report()["batching"]["coalesced"] >= 2
