"""Secure sessions over the service layer.

``SessionSpec(secure=True)`` settles accepted outcomes through the
batched Paillier path at the *payload* layer: the engine (and hence
every checkpoint digest) is untouched, plain payloads stay byte-
identical to the seed, and the secure payment is pinned to the serial
§3.6 protocol.
"""

import pytest

from repro.market.pricing import QuotedPrice
from repro.security import secure_payment_serial_reference, settlement_for
from repro.service import MarketPool, MarketSpec, SessionManager, SessionSpec

MARKET = MarketSpec(dataset="synthetic", seed=0)


@pytest.fixture(scope="module")
def pool():
    return MarketPool()


@pytest.fixture
def manager(pool):
    return SessionManager(pool=pool)


def _run_to_outcome(manager, spec):
    session_id = manager.open_session(spec)
    summary = manager.run(session_id)
    return session_id, summary["outcome"]


def _accepted_spec(manager, *, secure: bool):
    """A (seed, run) whose session terminates accepted."""
    for run in range(20):
        spec = SessionSpec(market=MARKET, seed=0, run=run, secure=secure)
        session_id, outcome = _run_to_outcome(manager, spec)
        manager.close(session_id)
        if outcome["accepted"]:
            return spec
    raise AssertionError("no accepted session in 20 runs")


class TestSecureOutcomePayload:
    def test_plain_payload_has_no_secure_key(self, manager):
        spec = _accepted_spec(manager, secure=False)
        _, outcome = _run_to_outcome(manager, spec)
        assert "secure" not in outcome

    def test_secure_payment_pinned_to_serial_protocol(self, manager):
        plain_spec = _accepted_spec(manager, secure=False)
        _, plain = _run_to_outcome(manager, plain_spec)
        from dataclasses import replace

        _, secure = _run_to_outcome(manager, replace(plain_spec, secure=True))
        assert secure["secure"] is True
        # Same game: identical bargaining trajectory, ΔG, and quote.
        assert secure["delta_g"] == plain["delta_g"]
        assert secure["quote"] == plain["quote"]
        assert secure["n_rounds"] == plain["n_rounds"]
        # The payment is the fixed-point secure settlement — value-
        # identical to the serial reference protocol on this session.
        settlement = settlement_for(plain_spec.seed, 256)
        [expected] = secure_payment_serial_reference(
            [plain["delta_g"]], [QuotedPrice.from_dict(plain["quote"])],
            settlement.public_key, settlement.private_key, rng=0,
        )
        assert secure["payment"] == expected
        # Quantisation aside, secure and plain payments agree closely.
        assert secure["payment"] == pytest.approx(plain["payment"], abs=1e-6)

    def test_secure_payload_memoised_and_stable(self, manager):
        spec = _accepted_spec(manager, secure=True)
        session_id, first = _run_to_outcome(manager, spec)
        again = manager.status(session_id)["outcome"]
        assert again == first

    def test_failed_secure_session_marked_but_unsettled(self, manager):
        # run=None with a seed that fails is not guaranteed; scan for one.
        for run in range(30):
            spec = SessionSpec(market=MARKET, seed=0, run=run, secure=True)
            session_id, outcome = _run_to_outcome(manager, spec)
            manager.close(session_id)
            if not outcome["accepted"]:
                assert outcome["secure"] is True
                assert outcome["payment"] == 0.0
                return
        pytest.skip("every scanned session accepted")


class TestSecureCheckpoints:
    def test_checkpoint_restore_round_trip(self, manager):
        """Secure settlement lives outside the engine: checkpoints of
        secure sessions replay and digest-verify unchanged, and the
        restored session re-settles to the same secure payment."""
        spec = _accepted_spec(manager, secure=True)
        session_id, outcome = _run_to_outcome(manager, spec)
        payload = manager.checkpoint(session_id)
        restored_id = manager.restore(payload, session_id="restored-secure")
        restored = manager.status(restored_id)["outcome"]
        assert restored == outcome
