"""docs/API.md is generated, never drifts from the route table."""

import pathlib

from repro.service.api import ERROR_CODES, ROUTES
from repro.service.docs import generate_api_markdown

DOCS = pathlib.Path(__file__).resolve().parents[2] / "docs" / "API.md"


def test_docs_match_route_table():
    assert DOCS.exists(), "run: PYTHONPATH=src python scripts/gen_api_docs.py"
    assert DOCS.read_text() == generate_api_markdown(), (
        "docs/API.md is stale; regenerate with "
        "`PYTHONPATH=src python scripts/gen_api_docs.py`"
    )


def test_every_route_documented():
    content = DOCS.read_text()
    for route in ROUTES:
        assert f"`{route.method} {route.path}`" in content


def test_every_error_code_documented():
    content = DOCS.read_text()
    for code in ERROR_CODES:
        assert f"`{code}`" in content


def test_route_table_is_all_v1():
    for route in ROUTES:
        assert route.path.startswith("/v1/"), route.path
        assert route.summary, f"{route.path} lacks a summary"
        assert route.response, f"{route.path} lacks a response description"
