"""Failure injection: adversarial strategies, protocol desync, edge inputs.

The engine and substrates must fail loudly and precisely — not corrupt
state — when fed malformed or hostile inputs.
"""

import numpy as np
import pytest

from repro.market import (
    BargainingEngine,
    Decision,
    FeatureBundle,
    MarketConfig,
    PerformanceOracle,
    QuotedPrice,
    ReservedPrice,
)
from repro.market.strategies.base import (
    DataResponse,
    DataStrategy,
    TaskDecision,
    TaskStrategy,
)
from repro.ml import DecisionTreeClassifier, RandomForestClassifier
from repro.ml.tree import quantile_bin
from repro.vfl import Channel, Message


def tiny_market():
    gains = {FeatureBundle.of([0]): 0.05, FeatureBundle.of([0, 1]): 0.1}
    reserved = {b: ReservedPrice(rate=2.0, base=0.5) for b in gains}
    config = MarketConfig(
        utility_rate=100.0, budget=3.0, initial_rate=2.5,
        initial_base=0.6, target_gain=0.1, max_rounds=20,
    )
    return gains, reserved, config


class StallingTask(TaskStrategy):
    """Never accepts, never fails — must hit the round cap."""

    def __init__(self, config):
        self.config = config

    def initial_quote(self):
        return QuotedPrice(2.5, 0.6, 0.85)

    def decide(self, quote, delta_g, round_number):
        return TaskDecision(Decision.CONTINUE, quote.with_cap(quote.cap + 0.001))


class HonestSeller(DataStrategy):
    def __init__(self, gains):
        self.gains = gains

    def respond(self, quote, round_number):
        bundle = max(self.gains, key=lambda b: self.gains[b])
        return DataResponse(Decision.CONTINUE, bundle)


class OffCatalogueSeller(DataStrategy):
    """Offers a bundle the oracle never priced — must be rejected."""

    def respond(self, quote, round_number):
        return DataResponse(Decision.CONTINUE, FeatureBundle.of([99]))


class TestEngineRobustness:
    def test_stalling_parties_hit_round_cap(self):
        gains, reserved, config = tiny_market()
        engine = BargainingEngine(
            StallingTask(config),
            HonestSeller(gains),
            PerformanceOracle.from_gains(gains),
            utility_rate=config.utility_rate,
            max_rounds=config.max_rounds,
        )
        outcome = engine.run()
        assert outcome.status == "max_rounds"
        assert outcome.n_rounds == config.max_rounds

    def test_off_catalogue_offer_rejected_loudly(self):
        gains, reserved, config = tiny_market()
        engine = BargainingEngine(
            StallingTask(config),
            OffCatalogueSeller(),
            PerformanceOracle.from_gains(gains),
            utility_rate=config.utility_rate,
        )
        with pytest.raises(ValueError, match="not in catalogue"):
            engine.run()

    def test_invalid_utility_rate_rejected(self):
        gains, reserved, config = tiny_market()
        with pytest.raises(ValueError, match="utility_rate"):
            BargainingEngine(
                StallingTask(config), HonestSeller(gains),
                PerformanceOracle.from_gains(gains), utility_rate=0.0,
            )


class TestChannelDesync:
    def test_wrong_receiver_blocks(self):
        ch = Channel()
        ch.send(Message("task_party", "data_party", "x", 1))
        with pytest.raises(ValueError, match="no pending"):
            ch.receive("task_party")

    def test_out_of_order_protocol_detected(self):
        ch = Channel()
        ch.send(Message("task_party", "data_party", "hist_request", 1))
        ch.send(Message("task_party", "data_party", "split_request", 2))
        ch.receive("data_party", "hist_request")
        with pytest.raises(ValueError, match="desync"):
            ch.receive("data_party", "eval_request")


class TestDegenerateMLInputs:
    def test_tree_on_single_repeated_row(self):
        X = np.tile([[1.0, 2.0]], (10, 1))
        y = np.array([0.0, 1.0] * 5)
        tree = DecisionTreeClassifier(rng=0).fit(X, y)
        # No split possible: predicts the prior everywhere.
        assert tree.n_nodes_ == 1
        np.testing.assert_allclose(tree.predict_proba(X), 0.5)

    def test_forest_on_constant_labels(self):
        X = np.random.default_rng(0).normal(size=(20, 3))
        forest = RandomForestClassifier(3, rng=0).fit(X, np.ones(20))
        assert np.all(forest.predict(X) == 1)

    def test_binning_single_row(self):
        design = quantile_bin(np.array([[3.14]]))
        assert design.n_samples == 1
        assert design.codes[0, 0] == 0

    def test_tree_rejects_nan_labels(self):
        X = np.zeros((4, 1))
        with pytest.raises(ValueError, match="binary"):
            DecisionTreeClassifier(rng=0).fit(X, np.array([0.0, 1.0, np.nan, 0.0]))


class TestHostilePrices:
    def test_zero_headroom_quote_payment_constant(self):
        q = QuotedPrice(rate=1.0, base=2.0, cap=2.0)
        for dg in (-1.0, 0.0, 0.5, 100.0):
            assert q.payment(dg) == 2.0

    def test_extreme_gains_clamped(self):
        q = QuotedPrice(rate=10.0, base=1.0, cap=3.0)
        assert q.payment(1e12) == 3.0
        assert q.payment(-1e12) == 1.0
