"""Metrics registry: instrument semantics, exports, thread safety."""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_accumulates(self, registry):
        c = registry.counter("hits_total", "hits", ("route",))
        c.inc(route="/a")
        c.inc(2.5, route="/a")
        assert c.value(route="/a") == 3.5
        assert c.value(route="/b") == 0.0

    def test_negative_increment_rejected(self, registry):
        c = registry.counter("hits_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_label_mismatch_rejected(self, registry):
        c = registry.counter("hits_total", "hits", ("route",))
        with pytest.raises(ValueError, match="expects labels"):
            c.inc(status="200")

    def test_get_or_create_returns_same_family(self, registry):
        a = registry.counter("hits_total", "hits", ("route",))
        b = registry.counter("hits_total")
        assert a is b

    def test_kind_clash_rejected(self, registry):
        registry.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total")


class TestGauge:
    def test_set_and_add(self, registry):
        g = registry.gauge("occupancy", "resident sessions")
        g.set(4)
        g.add(-1)
        assert g.value() == 3.0


class TestHistogram:
    def test_bucketing_is_cumulative_on_export(self, registry):
        h = registry.histogram("lat", "latency", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        snap = registry.snapshot()["lat"]["series"][""]
        assert snap["buckets"] == [[0.1, 1], [1.0, 2], ["+Inf", 3]]
        assert snap["count"] == 3
        assert snap["sum"] == pytest.approx(5.55)

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(ValueError, match="sorted"):
            registry.histogram("h", buckets=(1.0, 0.1))

    def test_time_context_manager_observes(self, registry):
        h = registry.histogram("t", buckets=(10.0,))
        with h.time():
            pass
        assert h.count() == 1


class TestDisable:
    def test_disabled_registry_records_nothing(self, registry):
        c = registry.counter("c_total")
        registry.set_enabled(False)
        c.inc()
        registry.set_enabled(True)
        assert c.value() == 0.0


class TestSnapshot:
    def test_snapshot_is_byte_stable(self, registry):
        import json

        c = registry.counter("req_total", "requests", ("route", "status"))
        c.inc(route="/b", status="200")
        c.inc(route="/a", status="500")
        first = json.dumps(registry.snapshot(), sort_keys=True)
        # Recording order must not leak: same state, same bytes.
        second = json.dumps(registry.snapshot(), sort_keys=True)
        assert first == second
        assert '"route=/a,status=500"' in first


class TestPrometheusRender:
    def test_counter_and_gauge_lines(self, registry):
        c = registry.counter("req_total", "requests served", ("route",))
        c.inc(3, route="/v1/health")
        registry.gauge("occ", "occupancy").set(2)
        text = registry.render_prometheus()
        assert "# HELP req_total requests served" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{route="/v1/health"} 3' in text
        assert "occ 2" in text
        assert text.endswith("\n")

    def test_histogram_exposition_shape(self, registry):
        h = registry.histogram("lat", "latency", buckets=(0.5,))
        h.observe(0.1)
        h.observe(2.0)
        text = registry.render_prometheus()
        assert 'lat_bucket{le="0.5"} 1' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 2.1" in text
        assert "lat_count 2" in text

    def test_label_values_escaped(self, registry):
        c = registry.counter("c_total", "", ("p",))
        c.inc(p='a"b\\c')
        assert 'p="a\\"b\\\\c"' in registry.render_prometheus()

    def test_families_sorted_by_name(self, registry):
        registry.counter("z_total").inc()
        registry.counter("a_total").inc()
        text = registry.render_prometheus()
        assert text.index("a_total") < text.index("z_total")


class TestThreadSafety:
    def test_concurrent_increments_do_not_lose_updates(self, registry):
        c = registry.counter("n_total")
        n_threads, per_thread = 8, 500

        def worker():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == n_threads * per_thread
