"""Trace layer: span nesting, propagation headers, ring, sink."""

import json
import threading

from repro.obs.trace import (
    SpanContext,
    Tracer,
    attach,
    current,
    detach,
    from_traceparent,
    span,
    to_traceparent,
)


class TestSpanNesting:
    def test_root_span_has_no_parent(self):
        tracer = Tracer()
        with span("root", tracer=tracer) as root:
            assert current() == root.context
        assert current() is None
        (record,) = tracer.spans()
        assert record["name"] == "root"
        assert record["parent_id"] is None
        assert len(record["trace_id"]) == 32
        assert len(record["span_id"]) == 16

    def test_child_inherits_trace_id_and_parents(self):
        tracer = Tracer()
        with span("root", tracer=tracer) as root:
            with span("child", tracer=tracer) as child:
                assert child.context.trace_id == root.context.trace_id
        child_rec, root_rec = tracer.spans()
        assert child_rec["name"] == "child"
        assert child_rec["parent_id"] == root_rec["span_id"]
        assert child_rec["trace_id"] == root_rec["trace_id"]

    def test_attrs_land_in_the_record(self):
        tracer = Tracer()
        with span("s", tracer=tracer, route="/v1/health") as s:
            s.set(status=200)
        (record,) = tracer.spans()
        assert record["attrs"] == {"route": "/v1/health", "status": 200}
        assert record["duration"] >= 0.0

    def test_context_restored_after_exception(self):
        tracer = Tracer()
        try:
            with span("boom", tracer=tracer):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert current() is None
        assert len(tracer.spans()) == 1


class TestPropagation:
    def test_traceparent_round_trip(self):
        ctx = SpanContext(trace_id="ab" * 16, span_id="cd" * 8)
        header = to_traceparent(ctx)
        assert header == f"00-{'ab' * 16}-{'cd' * 8}-01"
        assert from_traceparent(header) == ctx

    def test_malformed_traceparent_returns_none(self):
        for bad in (None, "", "garbage", "00-short-xx-01",
                    "00-" + "g" * 32 + "-" + "0" * 16 + "-01"):
            assert from_traceparent(bad) is None

    def test_attach_makes_remote_context_the_parent(self):
        tracer = Tracer()
        remote = SpanContext(trace_id="11" * 16, span_id="22" * 8)
        token = attach(remote)
        try:
            with span("server", tracer=tracer):
                pass
        finally:
            detach(token)
        (record,) = tracer.spans()
        assert record["trace_id"] == remote.trace_id
        assert record["parent_id"] == remote.span_id

    def test_context_propagates_into_threads_via_explicit_attach(self):
        # The asyncio server re-attaches inside executor callables; the
        # mechanism under test is attach/detach in a foreign thread.
        tracer = Tracer()
        seen = {}
        with span("root", tracer=tracer) as root:
            ctx = root.context

            def worker():
                token = attach(ctx)
                try:
                    with span("offloaded", tracer=tracer) as s:
                        seen["trace"] = s.context.trace_id
                finally:
                    detach(token)

            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["trace"] == ctx.trace_id


class TestRingAndPagination:
    def test_ring_is_bounded(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            with span(f"s{i}", tracer=tracer):
                pass
        records = tracer.spans()
        assert [r["name"] for r in records] == ["s2", "s3", "s4"]
        assert tracer.last_seq() == 5

    def test_offset_pagination_by_seq(self):
        tracer = Tracer()
        for i in range(4):
            with span(f"s{i}", tracer=tracer):
                pass
        first = tracer.spans(offset=0, limit=2)
        rest = tracer.spans(offset=int(first[-1]["seq"]))
        assert [r["name"] for r in first] == ["s0", "s1"]
        assert [r["name"] for r in rest] == ["s2", "s3"]


class TestSink:
    def test_sink_appends_ndjson(self, tmp_path):
        tracer = Tracer()
        path = tmp_path / "trace.ndjson"
        tracer.set_sink(str(path))
        with span("a", tracer=tracer):
            pass
        with span("b", tracer=tracer):
            pass
        lines = path.read_text().strip().splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b"]
