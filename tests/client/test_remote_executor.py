"""Multi-host jobs: RemoteShardExecutor vs the single-process digest.

Workers here are real ``create_server`` instances on ephemeral ports —
the same processes ``python -m repro serve`` would run — and the
coordinator ships chunks to them over ``POST /v1/chunks``.  The merged
report must digest-match the single-process
:class:`~repro.simulate.pool.SessionPool` path through interruption,
worker death, and resume.
"""

import threading
import time

import pytest

from repro.jobs import JobStore, RemoteShardExecutor
from repro.service import (
    MarketPool,
    SessionManager,
    SimulationSpec,
    create_server,
    run_simulation,
)

SPEC = SimulationSpec(sessions=120, seed=11, batch_size=32)


def _worker():
    server = create_server(port=0, manager=SessionManager(pool=MarketPool()))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server, "http://%s:%s" % server.server_address[:2]


@pytest.fixture
def workers():
    started = [_worker() for _ in range(2)]
    yield [url for _, url in started]
    for server, _ in started:
        server.shutdown()
        server.server_close()


@pytest.fixture
def store(tmp_path):
    return JobStore(str(tmp_path / "jobs.sqlite3"))


@pytest.fixture(scope="module")
def reference_digest():
    return run_simulation(SPEC)[2].digest()


class TestDigestParity:
    def test_two_workers_match_single_process(self, workers, store,
                                              reference_digest):
        executor = RemoteShardExecutor(store, workers)
        assert {url: h["ok"] for url, h in executor.probe(timeout=10).items()}
        record = executor.run(executor.submit(SPEC, chunks=6).job_id)
        assert record.status == "done"
        assert record.digest == reference_digest

    def test_one_worker_matches_too(self, workers, store, reference_digest):
        executor = RemoteShardExecutor(store, workers[:1])
        record = executor.run(executor.submit(SPEC, chunks=4).job_id)
        assert record.status == "done"
        assert record.digest == reference_digest


class TestKillResume:
    def test_interrupt_then_resume_with_survivor(self, store,
                                                 reference_digest):
        """max_chunks interrupt, kill a worker, resume on the survivor."""
        (w1, u1), (w2, u2) = _worker(), _worker()
        try:
            first = RemoteShardExecutor(store, [u1, u2], max_chunks=2)
            record = first.run(first.submit(SPEC, chunks=6).job_id)
            assert record.status == "interrupted"
            assert 0 < record.done_chunks < record.n_chunks

            # Worker 1 dies; the resume fleet still lists it, so the
            # executor must discover the corpse and finish on the
            # survivor — with only the pending chunks re-run.
            w1.shutdown()
            w1.server_close()
            resumed = RemoteShardExecutor(
                store, [u1, u2],
                client_options={"retries": 0, "timeout": 10},
            )
            record = resumed.run(record.job_id)
            assert record.status == "done"
            assert record.digest == reference_digest
        finally:
            for server in (w2,):
                server.shutdown()
                server.server_close()

    def test_dead_worker_is_dropped_and_chunks_requeued(self, store,
                                                        reference_digest):
        (alive_server, alive_url), (dead_server, dead_url) = (
            _worker(), _worker()
        )
        try:
            dead_server.shutdown()
            dead_server.server_close()
            executor = RemoteShardExecutor(
                store, [dead_url, alive_url],
                client_options={"retries": 0, "timeout": 10},
            )
            record = executor.run(executor.submit(SPEC, chunks=4).job_id)
            assert record.status == "done"
            assert record.digest == reference_digest
        finally:
            alive_server.shutdown()
            alive_server.server_close()

    def test_all_workers_dead_leaves_job_resumable(self, store,
                                                   reference_digest):
        server, url = _worker()
        server.shutdown()
        server.server_close()
        executor = RemoteShardExecutor(
            store, [url], client_options={"retries": 0, "timeout": 5}
        )
        record = executor.run(executor.submit(SPEC, chunks=4).job_id)
        assert record.status == "interrupted"
        assert record.done_chunks == 0

        live_server, live_url = _worker()
        try:
            resumed = RemoteShardExecutor(store, [live_url])
            record = resumed.run(record.job_id)
            assert record.status == "done"
            assert record.digest == reference_digest
        finally:
            live_server.shutdown()
            live_server.server_close()


class TestFailureSemantics:
    def test_worker_error_reply_fails_the_job(self, workers, store):
        """A chunk that *raises* (bad spec) fails the job, not retries."""
        from repro.client import ClientError

        record = store.submit("simulation", {"sessions": "nonsense"},
                              [(0, 1)])
        executor = RemoteShardExecutor(store, workers)
        with pytest.raises(ClientError):
            executor.run(record.job_id)
        assert store.get(record.job_id).status == "failed"

    def test_worker_urls_validated(self, store):
        with pytest.raises(ValueError, match="at least one"):
            RemoteShardExecutor(store, [])
        with pytest.raises(ValueError, match="duplicate"):
            RemoteShardExecutor(store, ["http://a:1", "http://a:1"])
        with pytest.raises(ValueError, match="chunk_timeout"):
            RemoteShardExecutor(store, ["http://a:1"], chunk_timeout=0)


class TestHungWorker:
    """A hung-but-connected worker must not stall the sweep forever.

    Failure-only death detection cannot see this case: the socket stays
    open, so no TransportError ever fires.  The per-chunk wall deadline
    (``chunk_timeout``) is the only guard — past it the chunk re-queues
    to the survivors and the hung worker is dropped.
    """

    def _hung_server(self):
        """Accepts connections and reads forever, never replying."""
        import socket

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        stop = threading.Event()
        conns = []

        def serve():
            listener.settimeout(0.2)
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except OSError:
                    continue
                conn.settimeout(0.2)
                conns.append(conn)

        threading.Thread(target=serve, daemon=True).start()
        url = "http://127.0.0.1:%d" % listener.getsockname()[1]

        def close():
            stop.set()
            for conn in conns:
                conn.close()
            listener.close()

        return url, close

    def test_hung_worker_chunk_requeued_within_wall_deadline(
        self, store, reference_digest
    ):
        hung_url, close_hung = self._hung_server()
        good_server, good_url = _worker()
        try:
            executor = RemoteShardExecutor(
                store, [hung_url, good_url],
                chunk_timeout=1.5,
                # A generous socket timeout proves the *wall* deadline
                # does the catching, not transport-level inactivity.
                client_options={"timeout": 120, "retries": 0},
            )
            t0 = time.monotonic()
            record = executor.run(executor.submit(SPEC, chunks=4).job_id)
            assert record.status == "done"
            assert record.digest == reference_digest
            # The sweep finished promptly after the deadline, not after
            # the 120s socket timeout.
            assert time.monotonic() - t0 < 60
            from repro import obs

            timeouts = obs.REGISTRY.counter(
                "repro_remote_chunks_total",
                "Chunk POSTs per worker URL, by result.",
                ("worker", "result"),
            )
            assert timeouts.value(worker=hung_url, result="timeout") >= 1
        finally:
            close_hung()
            good_server.shutdown()
            good_server.server_close()
