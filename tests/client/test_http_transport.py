"""HTTP transport behaviour: retries, reuse, error mapping, streaming."""

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest

from repro.client import (
    GoneError,
    HttpTransport,
    MarketplaceClient,
    NotFoundError,
    RequestError,
    TransportError,
    error_from_reply,
)
from repro.service import MarketPool, SessionManager, create_server


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    from repro.jobs import JobStore
    from repro.service import JobService

    store = JobStore(
        str(tmp_path_factory.mktemp("http-transport") / "jobs.sqlite3")
    )
    server = create_server(
        port=0,
        manager=SessionManager(pool=MarketPool()),
        jobs=JobService(store, shards=2),
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = "http://%s:%s" % server.server_address[:2]
    yield {"url": url, "server": server}
    server.shutdown()
    server.server_close()


def _dead_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestRetries:
    def test_retry_then_fail_counts_attempts(self):
        transport = HttpTransport(
            f"http://127.0.0.1:{_dead_port()}", retries=2, backoff=0.01
        )
        with pytest.raises(TransportError) as excinfo:
            transport.request("GET", "/v1/health")
        assert excinfo.value.attempts == 3

    def test_post_refusal_is_retried_too(self):
        transport = HttpTransport(
            f"http://127.0.0.1:{_dead_port()}", retries=1, backoff=0.01
        )
        with pytest.raises(TransportError) as excinfo:
            transport.request("POST", "/v1/markets", body={"x": 1})
        assert excinfo.value.attempts == 2

    def test_zero_retries_fails_on_first_attempt(self):
        transport = HttpTransport(
            f"http://127.0.0.1:{_dead_port()}", retries=0
        )
        with pytest.raises(TransportError) as excinfo:
            transport.request("GET", "/v1/health")
        assert excinfo.value.attempts == 1


class TestConnectionReuse:
    def test_keepalive_connection_is_reused(self, service):
        transport = HttpTransport(service["url"])
        transport.request("GET", "/v1/health")
        first = transport._local.conn
        transport.request("GET", "/v1/health")
        assert transport._local.conn is first
        transport.close()
        assert transport._local.conn is None


class _MalformedHandler(BaseHTTPRequestHandler):
    def do_GET(self):  # noqa: N802
        blob = b"<html>definitely not json</html>"
        self.send_response(200)
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def log_message(self, *args):  # pragma: no cover
        pass


class TestMalformedReplies:
    def test_non_json_body_raises_transport_error(self):
        server = HTTPServer(("127.0.0.1", 0), _MalformedHandler)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            transport = HttpTransport(
                "http://%s:%s" % server.server_address[:2], retries=0
            )
            with pytest.raises(TransportError, match="non-JSON"):
                transport.request("GET", "/anything")
        finally:
            server.shutdown()
            server.server_close()


class TestErrorMapping:
    def test_404_envelope_maps_to_not_found(self, service):
        client = MarketplaceClient.connect(service["url"])
        with pytest.raises(NotFoundError) as excinfo:
            client.session("snope")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "not_found"

    def test_legacy_post_maps_to_gone(self, service):
        transport = HttpTransport(service["url"])
        status, payload = transport.request(
            "POST", "/sessions", body={"market": {"dataset": "synthetic"}}
        )
        assert status == 410
        assert payload["error"]["code"] == "gone"
        assert payload["error"]["detail"]["location"] == "/v1/sessions"
        error = error_from_reply(status, payload)
        assert isinstance(error, GoneError)

    def test_405_maps_to_request_error(self, service):
        transport = HttpTransport(service["url"])
        status, payload = transport.request("DELETE", "/v1/markets")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"
        assert "POST" in payload["error"]["detail"]["allowed"]
        assert isinstance(error_from_reply(status, payload), RequestError)


class TestStreaming:
    def test_stream_of_unknown_job_raises_before_first_line(self, service):
        client = MarketplaceClient.connect(service["url"])
        with pytest.raises(NotFoundError):
            next(iter(client.job_events("jdeadbeef", timeout=5)))

    def test_stream_timeout_line(self, service):
        """A stream over a never-finishing job ends with a timeout line."""
        # A job that is recorded but never started: the stream can only
        # observe its submitted status, then time out client-side.
        store = service["server"].jobs.store
        record = store.submit("simulation", {"sessions": 10, "seed": 0},
                              [(0, 10)])
        client = MarketplaceClient.connect(service["url"])
        events = list(client.job_events(record.job_id, poll=0.05, timeout=0.3))
        assert events[0]["event"] == "progress"
        assert events[-1]["event"] == "timeout"


class TestBaseUrls:
    def test_scheme_and_host_validation(self):
        with pytest.raises(ValueError, match="scheme"):
            HttpTransport("ftp://example.org")
        with pytest.raises(ValueError, match="host"):
            HttpTransport("http://")

    def test_default_scheme_and_port(self):
        transport = HttpTransport("example.org")
        assert transport.base_url == "http://example.org:80"
