"""HTTP transport behaviour: retries, reuse, error mapping, streaming."""

import json
import socket
import threading
import time
from http.server import (
    BaseHTTPRequestHandler,
    HTTPServer,
    ThreadingHTTPServer,
)

import pytest

from repro.client import (
    GoneError,
    HttpTransport,
    MarketplaceClient,
    NotFoundError,
    RequestError,
    TransportError,
    error_from_reply,
)
from repro.service import MarketPool, SessionManager, create_server


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    from repro.jobs import JobStore
    from repro.service import JobService

    store = JobStore(
        str(tmp_path_factory.mktemp("http-transport") / "jobs.sqlite3")
    )
    server = create_server(
        port=0,
        manager=SessionManager(pool=MarketPool()),
        jobs=JobService(store, shards=2),
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = "http://%s:%s" % server.server_address[:2]
    yield {"url": url, "server": server}
    server.shutdown()
    server.server_close()


def _dead_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestRetries:
    def test_retry_then_fail_counts_attempts(self):
        transport = HttpTransport(
            f"http://127.0.0.1:{_dead_port()}", retries=2, backoff=0.01
        )
        with pytest.raises(TransportError) as excinfo:
            transport.request("GET", "/v1/health")
        assert excinfo.value.attempts == 3

    def test_post_refusal_is_retried_too(self):
        transport = HttpTransport(
            f"http://127.0.0.1:{_dead_port()}", retries=1, backoff=0.01
        )
        with pytest.raises(TransportError) as excinfo:
            transport.request("POST", "/v1/markets", body={"x": 1})
        assert excinfo.value.attempts == 2

    def test_zero_retries_fails_on_first_attempt(self):
        transport = HttpTransport(
            f"http://127.0.0.1:{_dead_port()}", retries=0
        )
        with pytest.raises(TransportError) as excinfo:
            transport.request("GET", "/v1/health")
        assert excinfo.value.attempts == 1


class TestConnectionReuse:
    def test_keepalive_connection_is_reused(self, service):
        transport = HttpTransport(service["url"])
        transport.request("GET", "/v1/health")
        first = transport._local.conn
        transport.request("GET", "/v1/health")
        assert transport._local.conn is first
        transport.close()
        assert transport._local.conn is None


class _MalformedHandler(BaseHTTPRequestHandler):
    def do_GET(self):  # noqa: N802
        blob = b"<html>definitely not json</html>"
        self.send_response(200)
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def log_message(self, *args):  # pragma: no cover
        pass


class TestMalformedReplies:
    def test_non_json_body_raises_transport_error(self):
        server = HTTPServer(("127.0.0.1", 0), _MalformedHandler)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        try:
            transport = HttpTransport(
                "http://%s:%s" % server.server_address[:2], retries=0
            )
            with pytest.raises(TransportError, match="non-JSON"):
                transport.request("GET", "/anything")
        finally:
            server.shutdown()
            server.server_close()


class TestErrorMapping:
    def test_404_envelope_maps_to_not_found(self, service):
        client = MarketplaceClient.connect(service["url"])
        with pytest.raises(NotFoundError) as excinfo:
            client.session("snope")
        assert excinfo.value.status == 404
        assert excinfo.value.code == "not_found"

    def test_legacy_post_maps_to_gone(self, service):
        transport = HttpTransport(service["url"])
        status, payload = transport.request(
            "POST", "/sessions", body={"market": {"dataset": "synthetic"}}
        )
        assert status == 410
        assert payload["error"]["code"] == "gone"
        assert payload["error"]["detail"]["location"] == "/v1/sessions"
        error = error_from_reply(status, payload)
        assert isinstance(error, GoneError)

    def test_405_maps_to_request_error(self, service):
        transport = HttpTransport(service["url"])
        status, payload = transport.request("DELETE", "/v1/markets")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"
        assert "POST" in payload["error"]["detail"]["allowed"]
        assert isinstance(error_from_reply(status, payload), RequestError)


class TestStreaming:
    def test_stream_of_unknown_job_raises_before_first_line(self, service):
        client = MarketplaceClient.connect(service["url"])
        with pytest.raises(NotFoundError):
            next(iter(client.job_events("jdeadbeef", timeout=5)))

    def test_stream_timeout_line(self, service):
        """A stream over a never-finishing job ends with a timeout line."""
        # A job that is recorded but never started: the stream can only
        # observe its submitted status, then time out client-side.
        store = service["server"].jobs.store
        record = store.submit("simulation", {"sessions": 10, "seed": 0},
                              [(0, 10)])
        client = MarketplaceClient.connect(service["url"])
        events = list(client.job_events(record.job_id, poll=0.05, timeout=0.3))
        assert events[0]["event"] == "progress"
        assert events[-1]["event"] == "timeout"


class TestBaseUrls:
    def test_scheme_and_host_validation(self):
        with pytest.raises(ValueError, match="scheme"):
            HttpTransport("ftp://example.org")
        with pytest.raises(ValueError, match="host"):
            HttpTransport("http://")

    def test_default_scheme_and_port(self):
        transport = HttpTransport("example.org")
        assert transport.base_url == "http://example.org:80"


def _status_server(script):
    """One-shot HTTP server that answers from a canned (status, headers)
    script, then 200s; returns ``(server, calls)``."""
    calls = []

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def _serve(self):
            calls.append(self.command)
            length = int(self.headers.get("Content-Length") or 0)
            self.rfile.read(length)
            status, headers = script.pop(0) if script else (200, {})
            blob = json.dumps({"ok": status == 200}).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(blob)))
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(blob)

        do_GET = do_POST = _serve

        def log_message(self, *args):
            pass

    # Threading + daemon handlers: shutdown() must not wait on a
    # client's still-open keep-alive connection.
    server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    server.daemon_threads = True
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server, calls


class TestRetryableStatuses:
    """429 (session cap) and 503 (drain) mean the handler refused the
    request before touching state — retryable for every method."""

    def _transport(self, server, **kwargs):
        kwargs.setdefault("retries", 2)
        kwargs.setdefault("backoff", 0.01)
        return HttpTransport(
            "http://127.0.0.1:%d" % server.server_address[1], **kwargs
        )

    def test_post_429_is_retried_to_success(self):
        server, calls = _status_server([(429, {})])
        try:
            status, payload = self._transport(server).request(
                "POST", "/v1/sessions", body={"seed": 0}
            )
            assert status == 200 and payload["ok"]
            assert calls == ["POST", "POST"]
        finally:
            server.shutdown()
            server.server_close()

    def test_503_during_drain_is_retried(self):
        server, calls = _status_server([(503, {"Retry-After": "0"})])
        try:
            status, _ = self._transport(server).request(
                "POST", "/v1/sessions/s0/step"
            )
            assert status == 200
            assert len(calls) == 2
        finally:
            server.shutdown()
            server.server_close()

    def test_retry_after_hint_is_honoured(self):
        server, _ = _status_server([(503, {"Retry-After": "0.3"})])
        try:
            transport = self._transport(server, backoff=0.001)
            start = time.monotonic()
            status, _ = transport.request("GET", "/v1/health")
            elapsed = time.monotonic() - start
            assert status == 200
            assert elapsed >= 0.25, (
                f"retried after only {elapsed:.3f}s despite Retry-After"
            )
        finally:
            server.shutdown()
            server.server_close()

    def test_budget_exhausted_returns_the_last_status(self):
        server, calls = _status_server([(429, {})] * 5)
        try:
            status, payload = self._transport(server).request(
                "POST", "/v1/sessions", body={}
            )
            assert status == 429
            assert len(calls) == 3  # retries=2 -> 3 attempts, then give up
        finally:
            server.shutdown()
            server.server_close()

    def test_other_statuses_are_not_retried(self):
        server, calls = _status_server([(404, {})])
        try:
            status, _ = self._transport(server).request(
                "GET", "/v1/nope"
            )
            assert status == 404
            assert calls == ["GET"]
        finally:
            server.shutdown()
            server.server_close()

    def test_retry_accounting_metrics(self):
        """Retries surface as client-side counters: attempts, honoured
        Retry-After hints, and total backoff sleep."""
        from repro.client.http import (
            _RETRY_AFTER_HONOURED,
            _RETRY_ATTEMPTS,
            _RETRY_SLEEP,
        )

        attempts0 = _RETRY_ATTEMPTS.value(method="POST")
        honoured0 = _RETRY_AFTER_HONOURED.value(method="POST")
        sleep0 = _RETRY_SLEEP.value(method="POST")
        # A large Retry-After (capped fraction of a second via a tiny
        # backoff) always floors the jittered delay -> honoured.
        server, calls = _status_server([(503, {"Retry-After": "0.05"})])
        try:
            status, _ = self._transport(server, backoff=0.001).request(
                "POST", "/v1/sessions", body={}
            )
            assert status == 200 and len(calls) == 2
        finally:
            server.shutdown()
            server.server_close()
        assert _RETRY_ATTEMPTS.value(method="POST") == attempts0 + 1
        assert _RETRY_AFTER_HONOURED.value(method="POST") == honoured0 + 1
        assert _RETRY_SLEEP.value(method="POST") >= sleep0 + 0.05

    def test_plain_backoff_does_not_count_retry_after(self):
        from repro.client.http import _RETRY_AFTER_HONOURED, _RETRY_ATTEMPTS

        attempts0 = _RETRY_ATTEMPTS.value(method="GET")
        honoured0 = _RETRY_AFTER_HONOURED.value(method="GET")
        server, calls = _status_server([(429, {})])
        try:
            status, _ = self._transport(server).request("GET", "/v1/health")
            assert status == 200 and len(calls) == 2
        finally:
            server.shutdown()
            server.server_close()
        assert _RETRY_ATTEMPTS.value(method="GET") == attempts0 + 1
        assert _RETRY_AFTER_HONOURED.value(method="GET") == honoured0

    def test_backoff_is_jittered_equal_style(self, monkeypatch):
        """Each delay lands in [step/2, step] for step = backoff * 2^n:
        half deterministic, half random, so refused fleets spread out."""
        import types

        import repro.client.http as http_mod

        recorded = []
        monkeypatch.setattr(
            http_mod, "time", types.SimpleNamespace(sleep=recorded.append)
        )
        transport = HttpTransport(
            f"http://127.0.0.1:{_dead_port()}", retries=3, backoff=0.08
        )
        with pytest.raises(TransportError):
            transport.request("GET", "/v1/health")
        assert len(recorded) == 3
        for attempt, delay in enumerate(recorded, start=1):
            step = 0.08 * (2 ** (attempt - 1))
            assert step / 2 <= delay <= step, (attempt, delay)
