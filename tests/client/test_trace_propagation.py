"""Cross-host tracing: one RemoteShardExecutor sweep, one stitched trace.

Workers are real ``create_server`` instances on ephemeral ports.  The
coordinator's sweep opens a root span; every chunk POST carries the
trace id in its ``traceparent`` header; the worker-side dispatch and
chunk-runner spans join the same trace.  Because the workers live in
this process, every span lands in the shared ``obs.TRACER`` and the
whole tree can be asserted in one place.
"""

import threading

import pytest

from repro import obs
from repro.jobs import JobStore, RemoteShardExecutor
from repro.service import MarketPool, SessionManager, SimulationSpec, create_server

SPEC = SimulationSpec(sessions=60, seed=3, batch_size=32)
N_CHUNKS = 4


def _worker():
    server = create_server(port=0, manager=SessionManager(pool=MarketPool()))
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server, "http://%s:%s" % server.server_address[:2]


@pytest.fixture
def workers():
    started = [_worker() for _ in range(2)]
    yield [url for _, url in started]
    for server, _ in started:
        server.shutdown()
        server.server_close()


class TestRemoteSweepTracing:
    def test_every_chunk_span_carries_the_root_trace_id(self, workers,
                                                        tmp_path):
        store = JobStore(str(tmp_path / "jobs.sqlite3"))
        seq0 = obs.TRACER.last_seq()
        executor = RemoteShardExecutor(store, workers)
        record = executor.run(executor.submit(SPEC, chunks=N_CHUNKS).job_id)
        assert record.status == "done"

        spans = obs.TRACER.spans(offset=seq0)
        roots = [s for s in spans if s["name"] == "job:remote-sweep"]
        assert len(roots) == 1
        root = roots[0]
        assert root["parent_id"] is None

        chunk_spans = [s for s in spans if s["name"] == "chunk:simulation"]
        assert len(chunk_spans) == N_CHUNKS
        assert all(s["trace_id"] == root["trace_id"] for s in chunk_spans)

        # The worker-side dispatch spans joined over the wire (the
        # traceparent header is their only link to the coordinator).
        dispatches = [
            s for s in spans
            if s["name"] == "dispatch" and s["attrs"].get("route") == "/v1/chunks"
        ]
        assert len(dispatches) == N_CHUNKS
        assert all(s["trace_id"] == root["trace_id"] for s in dispatches)

        # Both workers served chunks of the same trace.
        client_posts = [s for s in spans if s["name"] == "client:POST /v1/chunks"]
        assert len(client_posts) == N_CHUNKS
        assert all(s["trace_id"] == root["trace_id"] for s in client_posts)

    def test_stitched_trace_is_complete(self, workers, tmp_path):
        """Every chunk span walks parent links back to the sweep root."""
        store = JobStore(str(tmp_path / "jobs2.sqlite3"))
        seq0 = obs.TRACER.last_seq()
        executor = RemoteShardExecutor(store, workers)
        record = executor.run(executor.submit(SPEC, chunks=N_CHUNKS).job_id)
        assert record.status == "done"

        spans = obs.TRACER.spans(offset=seq0)
        by_id = {s["span_id"]: s for s in spans}
        [root] = [s for s in spans if s["name"] == "job:remote-sweep"]
        for chunk in (s for s in spans if s["name"] == "chunk:simulation"):
            # chunk -> dispatch -> client:POST -> job:remote-sweep
            names = []
            current = chunk
            while current["parent_id"] is not None:
                current = by_id[current["parent_id"]]
                names.append(current["name"])
            assert current["span_id"] == root["span_id"]
            assert names == ["dispatch", "client:POST /v1/chunks",
                             "job:remote-sweep"]
