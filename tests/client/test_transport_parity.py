"""Transport parity: every client method, identical payloads.

One scripted scenario — markets, a full session lifecycle, checkpoint/
restore, every error class, a sharded job with its event stream — runs
against a :class:`LocalTransport` stack and an HTTP stack, and every
captured payload must be *equal* (volatile fields like pids and
wall-clock excluded), not merely similar.  This is the contract that
lets ``--server URL`` flip any front door between embedded and remote
without changing a byte of what it sees.
"""

import math
import threading

import pytest

from repro.client import ClientError, MarketplaceClient
from repro.jobs import JobStore
from repro.service import JobService, MarketPool, SessionManager, create_server

SPEC = {"dataset": "synthetic", "seed": 0}
SIM = {"sessions": 48, "seed": 7, "batch_size": 16}

#: Fields whose values legitimately differ across processes/runs.
_VOLATILE = frozenset({"pid", "elapsed", "sessions_per_sec"})


def _norm(value):
    if isinstance(value, dict):
        return {
            key: ("<volatile>" if key in _VOLATILE else _norm(item))
            for key, item in value.items()
        }
    if isinstance(value, list):
        return [_norm(item) for item in value]
    if isinstance(value, float) and math.isnan(value):
        return "<nan>"
    return value


def _err(call):
    """An error, captured as comparable data."""
    try:
        call()
    except ClientError as exc:
        return {
            "type": type(exc).__name__,
            "status": exc.status,
            "code": exc.code,
            "message": str(exc),
        }
    raise AssertionError("expected a ClientError")


def _scenario(client: MarketplaceClient) -> dict:
    """The scripted call sequence; returns every captured payload."""
    out = {}
    out["health"] = client.health()
    out["healthz"] = client.healthz()
    out["market_cold"] = client.build_market(SPEC)
    out["market_warm"] = client.build_market(SPEC)
    opened = client.open_session({"market": SPEC, "seed": 0, "run": 0})
    sid = opened["session"]
    out["session_open"] = opened
    out["session_step"] = client.step(sid, rounds=3)
    out["session_status"] = client.session(sid)
    out["session_run"] = client.run_session(sid)
    out["checkpoint"] = client.checkpoint(sid)
    out["err_409_restore_resident"] = _err(
        lambda: client.restore(out["checkpoint"])
    )
    out["session_close"] = client.close_session(sid)
    restored = client.restore(out["checkpoint"])
    out["restored"] = restored
    out["restored_run"] = client.run_session(restored["session"])
    client.close_session(restored["session"])
    out["err_404_session"] = _err(lambda: client.session("snope"))
    out["err_404_close"] = _err(lambda: client.close_session("snope"))
    out["err_400_market"] = _err(
        lambda: client.build_market({"dataset": "mnist"})
    )
    out["err_404_job"] = _err(lambda: client.job("jdeadbeef"))
    submitted = client.submit_simulation(SIM, chunks=2)
    final = client.wait_job(submitted["job"], timeout=120)
    out["job_final"] = final
    out["jobs_page"] = client.jobs(limit=10)
    out["events_end"] = [
        event
        for event in client.job_events(submitted["job"], timeout=30)
        if event["event"] == "end"
    ]
    out["report"] = client.report()
    return out


@pytest.fixture(scope="module")
def results(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("parity")
    local = MarketplaceClient.local(
        manager=SessionManager(pool=MarketPool()),
        jobs=JobService(JobStore(str(tmp / "local.sqlite3")), shards=2),
    )
    server = create_server(
        port=0,
        manager=SessionManager(pool=MarketPool()),
        jobs=JobService(JobStore(str(tmp / "http.sqlite3")), shards=2),
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    url = "http://%s:%s" % server.server_address[:2]
    http = MarketplaceClient.connect(url)
    try:
        yield {"local": _scenario(local), "http": _scenario(http)}
    finally:
        http.close()
        server.shutdown()
        server.server_close()


SCENARIOS = (
    "health", "healthz", "market_cold", "market_warm",
    "session_open", "session_step", "session_status", "session_run",
    "checkpoint", "session_close", "restored", "restored_run",
    "err_409_restore_resident", "err_404_session", "err_404_close",
    "err_400_market", "err_404_job",
    "job_final", "jobs_page", "events_end", "report",
)


@pytest.mark.parametrize("name", SCENARIOS)
def test_payload_parity(results, name):
    assert _norm(results["local"][name]) == _norm(results["http"][name])


def test_scenarios_cover_every_capture(results):
    """A new capture must be added to SCENARIOS, not silently skipped."""
    assert set(SCENARIOS) == set(results["local"])
    assert set(SCENARIOS) == set(results["http"])


class TestDigests:
    def test_job_digest_matches_across_transports(self, results):
        assert (results["local"]["job_final"]["digest"]
                == results["http"]["job_final"]["digest"])

    def test_checkpoint_digest_matches_across_transports(self, results):
        assert (results["local"]["checkpoint"]["digest"]
                == results["http"]["checkpoint"]["digest"])

    def test_outcomes_bit_identical(self, results):
        local = results["local"]["session_run"]["outcome"]
        http = results["http"]["session_run"]["outcome"]
        assert local == http
