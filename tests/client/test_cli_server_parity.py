"""Acceptance pin: `repro simulate --server URL` equals the local run.

The digest in both reports must be identical, and the rendered text
must match byte for byte outside wall-clock lines — the contract that
makes a remote deployment a drop-in for the embedded path.
"""

import re
import threading

import pytest

from repro.cli import main
from repro.jobs import JobStore
from repro.service import JobService, MarketPool, SessionManager, create_server

_WALL_CLOCK_PREFIXES = ("throughput:", "oracle build:")


@pytest.fixture(scope="module")
def server_url(tmp_path_factory):
    store = JobStore(
        str(tmp_path_factory.mktemp("cli-parity") / "jobs.sqlite3")
    )
    server = create_server(
        port=0,
        manager=SessionManager(pool=MarketPool()),
        jobs=JobService(store, shards=2),
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    yield "http://%s:%s" % server.server_address[:2]
    server.shutdown()
    server.server_close()


def _deterministic(text: str) -> str:
    return "\n".join(
        line
        for line in text.splitlines()
        if not line.startswith(_WALL_CLOCK_PREFIXES)
    )


def _digest(text: str) -> str:
    found = re.search(r"\bdigest (\w+)", text)
    assert found, f"no digest line in:\n{text}"
    return found.group(1)


class TestSimulateServerParity:
    def test_64_sessions_identical_digest_and_text(self, server_url, capsys):
        assert main(["simulate", "--sessions", "64", "--seed", "0"]) == 0
        local = capsys.readouterr().out
        assert main(["simulate", "--sessions", "64", "--seed", "0",
                     "--server", server_url]) == 0
        remote = capsys.readouterr().out
        assert _digest(local) == _digest(remote)
        assert _deterministic(local) == _deterministic(remote)

    def test_expect_digest_guard_works_remotely(self, server_url, capsys):
        assert main(["simulate", "--sessions", "64", "--seed", "0"]) == 0
        digest = _digest(capsys.readouterr().out)
        assert main(["simulate", "--sessions", "64", "--seed", "0",
                     "--server", server_url,
                     "--expect-digest", digest]) == 0
        capsys.readouterr()
        assert main(["simulate", "--sessions", "64", "--seed", "0",
                     "--server", server_url,
                     "--expect-digest", "0" * 16]) == 1


class TestBargainServerParity:
    def test_bargain_output_byte_identical(self, server_url, capsys):
        argv = ["bargain", "--dataset", "synthetic", "--runs", "2",
                "--seed", "1"]
        assert main(argv) == 0
        local = capsys.readouterr().out
        assert main(argv + ["--server", server_url]) == 0
        remote = capsys.readouterr().out
        assert _deterministic(local) == _deterministic(remote)


class TestJobsServerMode:
    def test_jobs_run_and_status_against_server(self, server_url, capsys):
        assert main(["jobs", "run", "--sessions", "40", "--seed", "3",
                     "--server", server_url]) == 0
        out = capsys.readouterr().out
        job_id = re.search(r"submitted job (\w+)", out).group(1)
        assert "done" in out
        digest = _digest(out)

        assert main(["jobs", "status", job_id, "--server", server_url]) == 0
        status_out = capsys.readouterr().out
        assert job_id in status_out and digest in status_out

        assert main(["jobs", "list", "--server", server_url]) == 0
        assert job_id in capsys.readouterr().out

        # resume of a finished job is a clean no-op
        assert main(["jobs", "resume", job_id, "--server", server_url]) == 0
