"""Schema migration: a pre-fleet store file gains the fleet tables.

The fleet PR added ``workers`` and ``leases`` to the store schema.
Because every table is ``CREATE TABLE IF NOT EXISTS``, opening an old
file migrates it in place — and must do so without disturbing the job
rows already there: same ids, same chunk results, same digests.
"""

import sqlite3

import pytest

from repro.jobs import JobStore
from repro.jobs.executor import ShardedExecutor
from repro.service.specs import SimulationSpec

SPEC = SimulationSpec(sessions=24, seed=3, batch_size=8)


def _table_names(path):
    with sqlite3.connect(path) as conn:
        rows = conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
        ).fetchall()
    return {name for (name,) in rows}


@pytest.fixture
def pre_fleet_store(tmp_path):
    """A store file exactly as a pre-fleet build would leave it: a
    finished job on disk and no workers/leases tables."""
    path = str(tmp_path / "jobs.sqlite3")
    executor = ShardedExecutor(JobStore(path), shards=1)
    record = executor.run(executor.submit(SPEC, chunks=3).job_id)
    assert record.status == "done" and record.digest is not None
    with sqlite3.connect(path) as conn:
        conn.executescript("DROP TABLE workers; DROP TABLE leases;")
    assert _table_names(path) >= {"jobs", "chunks"}
    assert not _table_names(path) & {"workers", "leases"}
    return path, record


class TestMigration:
    def test_open_creates_fleet_tables(self, pre_fleet_store):
        path, _ = pre_fleet_store
        JobStore(path)
        assert _table_names(path) >= {"jobs", "chunks", "workers", "leases"}

    def test_existing_job_rows_and_digest_survive(self, pre_fleet_store):
        path, before = pre_fleet_store
        store = JobStore(path)
        after = store.get(before.job_id)
        assert after.status == "done"
        assert after.digest == before.digest
        assert after.report == before.report
        assert after.chunks == before.chunks
        assert [job.job_id for job in store.jobs()] == [before.job_id]

    def test_migrated_store_serves_the_fleet(self, pre_fleet_store):
        """The migrated file is immediately usable as a lease queue."""
        from repro.fleet.manager import FleetManager
        from repro.jobs.executor import CHUNK_RUNNERS, submit_simulation

        path, before = pre_fleet_store
        store = JobStore(path)
        fleet = FleetManager(store)
        wid = fleet.register("http://migrated.test")["worker"]
        fresh = submit_simulation(
            store, SimulationSpec(sessions=16, seed=5, batch_size=8),
            chunks=2,
        )
        for _ in range(2):
            lease = fleet.lease(wid)["lease"]
            assert lease["job"] == fresh.job_id  # never the done job
            payload = CHUNK_RUNNERS[lease["kind"]](
                lease["spec"], lease["start"], lease["stop"]
            )
            fleet.complete(wid, lease["job"], lease["chunk"], payload)
        assert store.pending_chunks(fresh.job_id) == []
        # The pre-fleet job is untouched by the fleet traffic.
        assert store.get(before.job_id).digest == before.digest
