"""JobStore durability and content-addressing."""

import pytest

from repro.jobs import JobStore, chunk_layout


@pytest.fixture
def store(tmp_path):
    return JobStore(str(tmp_path / "jobs.sqlite3"))


SPEC = {"sessions": 10, "seed": 0}
LAYOUT = [(0, 5), (5, 10)]


class TestSubmission:
    def test_submit_and_get(self, store):
        record = store.submit("simulation", SPEC, LAYOUT)
        assert record.status == "submitted"
        assert record.spec == SPEC
        assert record.chunks == ((0, 5), (5, 10))
        assert record.done_chunks == 0 and record.n_chunks == 2

    def test_submit_is_idempotent(self, store):
        first = store.submit("simulation", SPEC, LAYOUT)
        store.record_chunk(first.job_id, 0, {"start": 0, "stop": 5})
        again = store.submit("simulation", SPEC, LAYOUT)
        assert again.job_id == first.job_id
        assert again.done_chunks == 1  # progress survives resubmission

    def test_content_addressing(self, store):
        a = store.submit("simulation", SPEC, LAYOUT)
        b = store.submit("simulation", {**SPEC, "seed": 1}, LAYOUT)
        c = store.submit("simulation", SPEC, [(0, 10)])
        assert len({a.job_id, b.job_id, c.job_id}) == 3

    def test_unknown_job(self, store):
        with pytest.raises(KeyError, match="unknown job"):
            store.get("jdeadbeef")


class TestChunkProgress:
    def test_record_and_pending(self, store):
        record = store.submit("simulation", SPEC, LAYOUT)
        assert store.pending_chunks(record.job_id) == [(0, 0, 5), (1, 5, 10)]
        store.record_chunk(record.job_id, 1, {"start": 5, "stop": 10},
                           elapsed=0.5)
        assert store.pending_chunks(record.job_id) == [(0, 0, 5)]
        assert store.chunk_results(record.job_id) == {
            1: {"start": 5, "stop": 10}
        }

    def test_unknown_chunk_rejected(self, store):
        record = store.submit("simulation", SPEC, LAYOUT)
        with pytest.raises(ValueError, match="no chunk"):
            store.record_chunk(record.job_id, 7, {})

    def test_nan_results_round_trip(self, store):
        record = store.submit("simulation", SPEC, LAYOUT)
        store.record_chunk(record.job_id, 0, {"delta_g": [float("nan"), 0.5]})
        values = store.chunk_results(record.job_id)[0]["delta_g"]
        assert values[0] != values[0] and values[1] == 0.5


class TestDurability:
    def test_progress_survives_reopen(self, store):
        """The crash contract: a second store over the same file (a new
        process after kill -9) sees every committed chunk."""
        record = store.submit("simulation", SPEC, LAYOUT)
        store.record_chunk(record.job_id, 0, {"start": 0, "stop": 5})
        store.set_status(record.job_id, "running")

        reopened = JobStore(store.path)
        back = reopened.get(record.job_id)
        assert back.status == "running"
        assert back.done_chunks == 1
        assert reopened.pending_chunks(record.job_id) == [(1, 5, 10)]

    def test_finish_records_report(self, store):
        record = store.submit("simulation", SPEC, LAYOUT)
        store.finish(record.job_id, {"accepted": 3}, "abc123")
        done = JobStore(store.path).get(record.job_id)
        assert done.finished
        assert done.report == {"accepted": 3}
        assert done.digest == "abc123"

    def test_jobs_listing_newest_first(self, store):
        a = store.submit("simulation", SPEC, LAYOUT)
        b = store.submit("batch", SPEC, LAYOUT)
        listed = store.jobs()
        assert {r.job_id for r in listed} == {a.job_id, b.job_id}


class TestChunkLayout:
    def test_covers_range_exactly(self):
        layout = chunk_layout(103, 8)
        assert layout[0][0] == 0 and layout[-1][1] == 103
        assert all(a[1] == b[0] for a, b in zip(layout, layout[1:]))
        sizes = [stop - start for start, stop in layout]
        assert max(sizes) - min(sizes) <= 1

    def test_more_chunks_than_items(self):
        assert chunk_layout(3, 10) == [(0, 1), (1, 2), (2, 3)]

    def test_single_chunk(self):
        assert chunk_layout(5, 1) == [(0, 5)]


class TestListJobs:
    """Cursor pagination: deterministic order, O(page) semantics."""

    def _submit_many(self, store, n=7):
        ids = []
        for seed in range(n):
            record = store.submit("simulation", {**SPEC, "seed": seed}, LAYOUT)
            ids.append(record.job_id)
        return sorted(ids)

    def test_orders_by_job_id(self, store):
        ids = self._submit_many(store)
        listed = [r.job_id for r in store.list_jobs()]
        assert listed == ids

    def test_limit_and_cursor_walk_every_job_once(self, store):
        ids = self._submit_many(store)
        seen, after = [], None
        while True:
            page = store.list_jobs(limit=3, after=after)
            if not page:
                break
            seen += [r.job_id for r in page]
            if len(page) < 3:
                break
            after = page[-1].job_id
        assert seen == ids

    def test_after_is_exclusive(self, store):
        ids = self._submit_many(store, n=3)
        page = store.list_jobs(after=ids[0])
        assert [r.job_id for r in page] == ids[1:]

    def test_empty_store_and_past_the_end(self, store):
        assert store.list_jobs(limit=5) == []
        ids = self._submit_many(store, n=2)
        assert store.list_jobs(after=ids[-1]) == []

    def test_bad_limit_rejected(self, store):
        with pytest.raises(ValueError, match="limit"):
            store.list_jobs(limit=0)
