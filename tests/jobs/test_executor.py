"""ShardedExecutor: bit-identical merges, kill/resume, batch jobs.

The acceptance contract of the jobs subsystem: for a fixed
``SimulationSpec``, the merged report digest from the sharded executor
— any shard count, any chunking, including after an interruption
resumed through the JobStore — equals the single-process
``SessionPool`` digest.
"""

import threading

import pytest

from repro.jobs import JobStore, ShardedExecutor
from repro.service import (
    BatchSpec,
    MarketSpec,
    SessionSpec,
    SimulationSpec,
    run_simulation,
)
from repro.service.manager import shared_pool
from repro.utils.canonical import content_digest

# A mixed population: strategic/strategic rides the vectorised kernel,
# the other pairs (and the linear-cost sessions) run stepwise through
# the memoised oracle — exercising every merge path, including the
# cross-shard oracle hit accounting.
MIXED = SimulationSpec(
    sessions=120,
    seed=3,
    batch_size=32,
    strategy_mix=(
        ("strategic", "strategic", 0.5),
        ("increase_price", "strategic", 0.3),
        ("strategic", "random_bundle", 0.2),
    ),
    cost_mix=(("none", 0.0, 0.6), ("linear", 0.005, 0.4)),
)


# The same population settled through the batched Paillier path.
# Every shard rebuilds the seed-derived keypair, and the packed
# settlement is value-identical regardless of how accepted sessions
# are grouped into chunks — so the merged digest must not move.
SECURE = SimulationSpec(
    sessions=80,
    seed=3,
    batch_size=32,
    strategy_mix=(
        ("strategic", "strategic", 0.6),
        ("increase_price", "strategic", 0.4),
    ),
    secure=True,
    key_bits=128,
)


@pytest.fixture
def store(tmp_path):
    return JobStore(str(tmp_path / "jobs.sqlite3"))


@pytest.fixture(scope="module")
def reference_digest():
    _, _, report = run_simulation(MIXED)
    return report.digest()


@pytest.fixture(scope="module")
def secure_reference_digest():
    _, _, report = run_simulation(SECURE)
    return report.digest()


class TestShardedBitIdentity:
    @pytest.mark.parametrize("shards,chunks", [(1, 1), (2, 4), (3, 7)])
    def test_merged_digest_equals_single_process(
        self, store, reference_digest, shards, chunks
    ):
        executor = ShardedExecutor(store, shards=shards)
        record = executor.submit(MIXED, chunks=chunks)
        done = executor.run(record.job_id)
        assert done.finished
        assert done.digest == reference_digest
        # Oracle accounting merged exactly, not just the digest field.
        assert done.report["oracle_queries"] >= done.report["oracle_hits"] >= 0

    @pytest.mark.parametrize("shards,chunks", [(1, 1), (3, 5)])
    def test_secure_merged_digest_equals_single_process(
        self, store, secure_reference_digest, shards, chunks
    ):
        executor = ShardedExecutor(store, shards=shards)
        record = executor.submit(SECURE, chunks=chunks)
        done = executor.run(record.job_id)
        assert done.finished
        assert done.digest == secure_reference_digest

    def test_secure_digest_differs_from_plain(self, secure_reference_digest):
        """Quantisation is visible: secure settlement rounds payments
        to the fixed-point grid, so the report is not the plain one."""
        from dataclasses import replace

        _, _, plain = run_simulation(replace(SECURE, secure=False))
        assert plain.digest() != secure_reference_digest

    def test_rerun_of_finished_job_is_a_noop(self, store, reference_digest):
        executor = ShardedExecutor(store, shards=2)
        record = executor.submit(MIXED, chunks=4)
        first = executor.run(record.job_id)
        again = executor.run(record.job_id)
        assert again.digest == first.digest == reference_digest


class TestInterruptionAndResume:
    def test_max_chunks_interrupts_then_resume_completes(
        self, store, reference_digest
    ):
        """Deterministic mid-run stop: only some chunks land, the job is
        'interrupted', and a *fresh executor over a reopened store* (the
        post-crash process) finishes the remainder to the same digest."""
        executor = ShardedExecutor(store, shards=2, max_chunks=2)
        record = executor.submit(MIXED, chunks=6)
        stopped = executor.run(record.job_id)
        assert stopped.status == "interrupted"
        assert 0 < stopped.done_chunks < stopped.n_chunks

        resumed_store = JobStore(store.path)  # simulate a new process
        resumed = ShardedExecutor(resumed_store, shards=2).run(record.job_id)
        assert resumed.finished
        assert resumed.digest == reference_digest

    def test_stop_event_leaves_job_resumable(self, store, reference_digest):
        stop = threading.Event()
        stop.set()  # drain immediately: no chunk may be dispatched
        executor = ShardedExecutor(store, shards=2, stop_event=stop)
        record = executor.submit(MIXED, chunks=4)
        stopped = executor.run(record.job_id)
        assert stopped.status == "interrupted"
        assert stopped.done_chunks == 0
        resumed = ShardedExecutor(store, shards=2).run(record.job_id)
        assert resumed.digest == reference_digest


class TestBatchJobs:
    SPEC = BatchSpec(
        session=SessionSpec(
            market=MarketSpec(dataset="synthetic", seed=5), seed=0
        ),
        runs=12,
    )

    def test_batch_matches_bargain_many(self, store):
        from repro.service.manager import _outcome_dict

        executor = ShardedExecutor(store, shards=2)
        record = executor.submit(self.SPEC, chunks=3)
        done = executor.run(record.job_id)
        assert done.finished

        market = shared_pool().get(self.SPEC.session.market)
        expected = [
            _outcome_dict(o)
            for o in market.bargain_many(self.SPEC.runs, base_seed=0)
        ]
        assert done.report["outcomes"] == expected
        assert done.report["digest"] == content_digest(expected)
        assert done.report["accepted"] == sum(
            1 for o in expected if o["status"] == "accepted"
        )

    def test_batch_spec_validation(self):
        with pytest.raises(ValueError, match="run must be None"):
            BatchSpec(
                session=SessionSpec(
                    market=MarketSpec(dataset="synthetic"), run=3
                ),
                runs=4,
            )
        with pytest.raises(ValueError, match="full MarketSpec"):
            BatchSpec(session=SessionSpec(market="abc123"), runs=4)
