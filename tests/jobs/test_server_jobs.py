"""HTTP jobs + checkpoint/restore over the wire.

``POST /v1/simulations`` submits durable sharded jobs; ``GET /v1/jobs/<id>``
polls their progress; ``GET``/``PUT /v1/sessions/<id>/state`` ship an
in-flight session between two live servers with a bit-identical
remaining trace.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.jobs import JobStore
from repro.service import (
    MarketPool,
    SessionManager,
    SimulationSpec,
    create_server,
    run_simulation,
)
from repro.service.server import JobService

SIM = {"sessions": 60, "seed": 9, "batch_size": 16}


def _call(url, method="GET", body=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


@pytest.fixture
def service(tmp_path):
    store = JobStore(str(tmp_path / "jobs.sqlite3"))
    manager = SessionManager(pool=MarketPool())
    server = create_server(
        port=0, manager=manager, jobs=JobService(store, shards=2)
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield {"url": f"http://{host}:{port}", "store": store, "server": server}
    server.shutdown()
    server.server_close()


class TestHealthz:
    def test_healthz_reports_liveness(self, service):
        status, payload = _call(f"{service['url']}/v1/healthz")
        assert status == 200
        assert payload["ok"] and not payload["draining"]
        assert payload["pid"] > 0
        assert payload["sessions"]["resident"] == 0
        assert payload["active_jobs"] == 0

    def test_healthz_load_and_capacity_share_the_heartbeat_shape(
        self, service
    ):
        """`load` is the same `{sessions, chunks}` dict fleet heartbeats
        carry; `capacity` is its static counterpart."""
        status, payload = _call(f"{service['url']}/v1/healthz")
        assert status == 200
        assert payload["load"] == {"sessions": 0, "chunks": 0}
        assert set(payload["capacity"]) == {"sessions", "chunks"}
        assert payload["capacity"]["chunks"] == 2  # the service's shards
        assert payload["capacity"]["sessions"] >= 1


class TestSimulationJobs:
    def _wait_done(self, url, job_id, timeout=120.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, payload = _call(f"{url}/v1/jobs/{job_id}")
            assert status == 200, payload
            if payload["status"] in ("done", "failed"):
                return payload
            time.sleep(0.1)
        raise AssertionError(f"job {job_id} did not finish: {payload}")

    def test_submit_poll_report_digest(self, service):
        status, submitted = _call(
            f"{service['url']}/v1/simulations", "POST", {**SIM, "chunks": 3}
        )
        assert status == 202, submitted
        assert submitted["status"] in ("submitted", "running", "done")
        final = self._wait_done(service["url"], submitted["job"])
        assert final["status"] == "done"
        assert final["chunks_done"] == final["chunks"] == 3

        _, _, reference = run_simulation(SimulationSpec.from_dict(SIM))
        assert final["digest"] == reference.digest()
        # The stored report rides along, wire-safe (no NaN tokens).
        assert final["report"]["n_sessions"] == SIM["sessions"]

    def test_resubmit_attaches_to_finished_job(self, service):
        _, submitted = _call(
            f"{service['url']}/v1/simulations", "POST", {**SIM, "chunks": 3}
        )
        self._wait_done(service["url"], submitted["job"])
        status, again = _call(
            f"{service['url']}/v1/simulations", "POST", {**SIM, "chunks": 3}
        )
        assert status == 202
        assert again["job"] == submitted["job"]
        assert again["status"] == "done" and not again["started"]

    def test_jobs_listing_and_unknown_job(self, service):
        _, submitted = _call(
            f"{service['url']}/v1/simulations", "POST", {**SIM, "chunks": 2}
        )
        status, listing = _call(f"{service['url']}/v1/jobs")
        assert status == 200
        assert submitted["job"] in {j["job"] for j in listing["jobs"]}
        status, error = _call(f"{service['url']}/v1/jobs/jdeadbeef")
        assert status == 404 and "unknown job" in error["error"]["message"]

    def test_invalid_spec_rejected(self, service):
        status, error = _call(
            f"{service['url']}/v1/simulations", "POST", {"sessions": -1}
        )
        assert status == 400 and "sessions" in error["error"]["message"]


class TestCheckpointOverTheWire:
    def test_ship_session_between_two_servers(self, service, tmp_path):
        url = service["url"]
        _, opened = _call(
            f"{url}/v1/sessions", "POST",
            {"market": {"dataset": "synthetic", "seed": 2}, "seed": 0},
        )
        sid = opened["session"]
        _call(f"{url}/v1/sessions/{sid}/step", "POST", {"rounds": 2})
        status, checkpoint = _call(f"{url}/v1/sessions/{sid}/state")
        assert status == 200
        assert checkpoint["state"]["round_number"] == 2

        # A second, cold server (fresh pool, fresh store).
        other = create_server(
            port=0,
            manager=SessionManager(pool=MarketPool()),
            jobs=JobService(JobStore(str(tmp_path / "other.sqlite3"))),
        )
        thread = threading.Thread(target=other.serve_forever, daemon=True)
        thread.start()
        try:
            other_url = "http://%s:%s" % other.server_address[:2]
            status, restored = _call(
                f"{other_url}/v1/sessions/{sid}/state", "PUT", checkpoint
            )
            assert status == 201, restored
            assert restored["session"] == sid
            assert restored["round"] == 2

            _, final_a = _call(f"{url}/v1/sessions/{sid}/step", "POST",
                               {"until_done": True})
            _, final_b = _call(f"{other_url}/v1/sessions/{sid}/step", "POST",
                               {"until_done": True})
            assert final_a["done"] and final_b["done"]
            assert final_a["outcome"] == final_b["outcome"]
        finally:
            other.shutdown()
            other.server_close()

    def test_tampered_checkpoint_rejected_with_400(self, service):
        url = service["url"]
        _, opened = _call(
            f"{url}/v1/sessions", "POST",
            {"market": {"dataset": "synthetic", "seed": 2}, "seed": 1},
        )
        sid = opened["session"]
        _call(f"{url}/v1/sessions/{sid}/step", "POST", {"rounds": 1})
        _, checkpoint = _call(f"{url}/v1/sessions/{sid}/state")
        checkpoint["state"]["quote"]["base"] += 0.5
        status, error = _call(
            f"{url}/v1/sessions/fresh-id/state", "PUT", checkpoint
        )
        assert status == 400 and "digest mismatch" in error["error"]["message"]


class TestDrain:
    def test_drain_interrupts_jobs_resumably(self, service):
        server = service["server"]
        jobs: JobService = server.jobs
        jobs.stop_event.set()  # what SIGTERM triggers before joining
        status, payload = _call(f"{service['url']}/v1/healthz")
        assert payload["draining"]
        # A submit during drain records the job but does not start it.
        status, submitted = _call(
            f"{service['url']}/v1/simulations", "POST", {**SIM, "chunks": 2}
        )
        assert status == 202
        assert not submitted["started"]
        record = service["store"].get(submitted["job"])
        assert not record.finished
        jobs.drain(timeout=5.0)
