"""The ``python -m repro jobs`` front door: run, interrupt, resume."""

import re

import pytest

from repro.cli import build_parser, main
from repro.service import SimulationSpec, run_simulation

ARGS = ["--sessions", "40", "--seed", "5", "--batch-size", "16"]
SPEC = SimulationSpec(sessions=40, seed=5, batch_size=16)


@pytest.fixture(scope="module")
def reference_digest():
    _, _, report = run_simulation(SPEC)
    return report.digest()


def _store_args(tmp_path):
    return ["--store", str(tmp_path / "jobs.sqlite3")]


def _job_id(output: str) -> str:
    match = re.search(r"job (j[0-9a-f]{16})", output)
    assert match, output
    return match.group(1)


class TestParser:
    def test_jobs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["jobs"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["jobs", "run"])
        assert args.jobs_command == "run"
        assert args.sessions == 1000
        assert args.shards == 2
        assert args.chunks is None and args.store is None

    def test_resume_takes_job_id(self):
        args = build_parser().parse_args(["jobs", "resume", "jabc"])
        assert args.job_id == "jabc"


class TestRunResume:
    def test_run_to_completion_with_digest_guard(
        self, tmp_path, capsys, reference_digest
    ):
        code = main(["jobs", "run", *ARGS, "--shards", "2", "--chunks", "4",
                     *_store_args(tmp_path),
                     "--expect-digest", reference_digest])
        out = capsys.readouterr().out
        assert code == 0
        assert f"digest {reference_digest}" in out
        assert "population: 40 sessions" in out  # full report re-rendered

    def test_wrong_digest_fails(self, tmp_path, capsys):
        code = main(["jobs", "run", *ARGS, "--chunks", "2",
                     *_store_args(tmp_path), "--expect-digest", "0" * 16])
        assert code == 1
        assert "digest mismatch" in capsys.readouterr().out

    def test_interrupt_then_resume(self, tmp_path, capsys, reference_digest):
        """--max-chunks leaves a resumable job; resume completes it to
        the single-process digest."""
        code = main(["jobs", "run", *ARGS, "--chunks", "4",
                     "--max-chunks", "1", *_store_args(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "interrupted" in out and "resume with" in out
        job_id = _job_id(out)

        code = main(["jobs", "status", job_id, *_store_args(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0 and "interrupted" in out

        code = main(["jobs", "resume", job_id, *_store_args(tmp_path),
                     "--expect-digest", reference_digest])
        out = capsys.readouterr().out
        assert code == 0
        assert "done" in out and f"digest {reference_digest}" in out

    def test_unfinished_job_fails_digest_guard(self, tmp_path, capsys):
        code = main(["jobs", "run", *ARGS, "--chunks", "4", "--max-chunks",
                     "1", *_store_args(tmp_path), "--expect-digest", "f" * 16])
        assert code == 1
        assert "cannot verify" in capsys.readouterr().out

    def test_list_and_status(self, tmp_path, capsys):
        main(["jobs", "run", *ARGS, "--chunks", "2", *_store_args(tmp_path)])
        job_id = _job_id(capsys.readouterr().out)
        code = main(["jobs", "list", *_store_args(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0 and job_id in out
        code = main(["jobs", "status", job_id, "--report",
                     *_store_args(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0 and "population: 40 sessions" in out

    def test_unknown_job_id(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown job"):
            main(["jobs", "status", "jdeadbeef", *_store_args(tmp_path)])
        with pytest.raises(SystemExit, match="unknown job"):
            main(["jobs", "resume", "jdeadbeef", *_store_args(tmp_path)])

    def test_empty_store_list(self, tmp_path, capsys):
        code = main(["jobs", "list", *_store_args(tmp_path)])
        assert code == 0
        assert "no jobs recorded" in capsys.readouterr().out
