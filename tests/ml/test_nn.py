"""Tests for NN layers (gradient checks), losses, optimizers, and models."""

import numpy as np
import pytest

from repro.ml.nn import (
    Adam,
    Dense,
    EmbeddingBag,
    MLPClassifier,
    MLPRegressor,
    Parameter,
    ReLU,
    SGD,
    Sequential,
    SetEmbeddingRegressor,
    bce_with_logits,
    mse_loss,
    sigmoid,
)


def numerical_grad(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        ix = it.multi_index
        orig = x[ix]
        x[ix] = orig + eps
        fp = f()
        x[ix] = orig - eps
        fm = f()
        x[ix] = orig
        grad[ix] = (fp - fm) / (2 * eps)
        it.iternext()
    return grad


class TestDenseGradients:
    def test_weight_and_bias_gradients(self):
        rng = np.random.default_rng(0)
        layer = Dense(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        target = rng.normal(size=(5, 3))

        def loss_fn():
            return 0.5 * np.sum((layer.forward(x) - target) ** 2)

        out = layer.forward(x)
        layer.W.zero_grad()
        layer.b.zero_grad()
        layer.backward(out - target)
        np.testing.assert_allclose(
            layer.W.grad, numerical_grad(loss_fn, layer.W.value), atol=1e-5
        )
        np.testing.assert_allclose(
            layer.b.grad, numerical_grad(loss_fn, layer.b.value), atol=1e-5
        )

    def test_input_gradient(self):
        rng = np.random.default_rng(1)
        layer = Dense(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss_fn():
            return 0.5 * np.sum((layer.forward(x) - target) ** 2)

        out = layer.forward(x)
        grad_in = layer.backward(out - target)
        np.testing.assert_allclose(grad_in, numerical_grad(loss_fn, x), atol=1e-5)


class TestReLU:
    def test_forward_clamps(self):
        relu = ReLU()
        np.testing.assert_array_equal(
            relu.forward(np.array([[-1.0, 2.0]])), [[0.0, 2.0]]
        )

    def test_backward_masks(self):
        relu = ReLU()
        relu.forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(
            relu.backward(np.array([[5.0, 5.0]])), [[0.0, 5.0]]
        )


class TestEmbeddingBag:
    def test_forward_is_mean_of_rows(self):
        bag = EmbeddingBag(5, 3, rng=0)
        table = bag.weight.value
        out = bag.forward([np.array([0, 2]), np.array([4])])
        np.testing.assert_allclose(out[0], (table[0] + table[2]) / 2)
        np.testing.assert_allclose(out[1], table[4])

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(2)
        bag = EmbeddingBag(4, 2, rng=rng)
        sets = [np.array([0, 1]), np.array([1, 2, 3])]
        target = rng.normal(size=(2, 2))

        def loss_fn():
            return 0.5 * np.sum((bag.forward(sets) - target) ** 2)

        out = bag.forward(sets)
        bag.weight.zero_grad()
        bag.backward(out - target)
        np.testing.assert_allclose(
            bag.weight.grad, numerical_grad(loss_fn, bag.weight.value), atol=1e-5
        )

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            EmbeddingBag(3, 2, rng=0).forward([np.array([], dtype=int)])


class TestSequentialGradients:
    def test_chain_gradient_matches_numerical(self):
        rng = np.random.default_rng(3)
        net = Sequential(Dense(3, 5, rng=rng), ReLU(), Dense(5, 1, rng=rng))
        x = rng.normal(size=(6, 3))
        y = rng.normal(size=6)

        def loss_fn():
            return mse_loss(net.forward(x), y)[0]

        pred = net.forward(x)
        _, grad = mse_loss(pred, y)
        for p in net.parameters():
            p.zero_grad()
        net.backward(grad)
        for p in net.parameters():
            np.testing.assert_allclose(p.grad, numerical_grad(loss_fn, p.value), atol=1e-5)


class TestLosses:
    def test_bce_gradient_matches_numerical(self):
        rng = np.random.default_rng(4)
        logits = rng.normal(size=(7, 1))
        y = rng.integers(0, 2, 7).astype(float)

        def loss_fn():
            return bce_with_logits(logits, y)[0]

        _, grad = bce_with_logits(logits, y)
        np.testing.assert_allclose(grad, numerical_grad(loss_fn, logits), atol=1e-6)

    def test_bce_stable_for_large_logits(self):
        loss, grad = bce_with_logits(np.array([1000.0, -1000.0]), np.array([1.0, 0.0]))
        assert np.isfinite(loss) and np.all(np.isfinite(grad))
        assert loss < 1e-6

    def test_mse_gradient_matches_numerical(self):
        rng = np.random.default_rng(5)
        pred = rng.normal(size=(6, 1))
        y = rng.normal(size=6)

        def loss_fn():
            return mse_loss(pred, y)[0]

        _, grad = mse_loss(pred, y)
        np.testing.assert_allclose(grad, numerical_grad(loss_fn, pred), atol=1e-6)

    def test_sigmoid_range(self):
        z = np.linspace(-50, 50, 101)
        s = sigmoid(z)
        assert s.min() >= 0.0 and s.max() <= 1.0


class TestOptimizers:
    @pytest.mark.parametrize("make_opt", [
        lambda p: SGD(p, lr=0.1),
        lambda p: SGD(p, lr=0.05, momentum=0.9),
        lambda p: Adam(p, lr=0.1),
    ])
    def test_minimizes_quadratic(self, make_opt):
        p = Parameter(np.array([5.0, -3.0]))
        opt = make_opt([p])
        for _ in range(300):
            opt.zero_grad()
            p.grad += 2 * p.value  # d/dx of ||x||^2
            opt.step()
        assert np.abs(p.value).max() < 1e-2

    def test_zero_grad_clears(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.1)
        p.grad += 1.0
        opt.zero_grad()
        np.testing.assert_array_equal(p.grad, 0.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestMLPClassifier:
    def test_learns_xor(self):
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0.0, 1.0, 1.0, 0.0])
        X_rep = np.repeat(X, 50, axis=0) + np.random.default_rng(0).normal(
            0, 0.05, (200, 2)
        )
        y_rep = np.repeat(y, 50)
        clf = MLPClassifier((16, 8), epochs=200, batch_size=32, lr=1e-2, rng=0)
        clf.fit(X_rep, y_rep)
        assert clf.score(X, y.astype(int)) == 1.0

    def test_loss_curve_decreases(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 4))
        y = (X[:, 0] + X[:, 1] > 0).astype(float)
        clf = MLPClassifier((8,), epochs=30, rng=0).fit(X, y)
        assert clf.loss_curve_[-1] < clf.loss_curve_[0]

    def test_predict_proba_bounds(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 3))
        y = (X[:, 0] > 0).astype(float)
        proba = MLPClassifier((8,), epochs=10, rng=0).fit(X, y).predict_proba(X)
        assert proba.min() >= 0.0 and proba.max() <= 1.0

    def test_unfit_predict_rejected(self):
        with pytest.raises(ValueError, match="fit"):
            MLPClassifier().predict(np.zeros((1, 2)))

    def test_nonbinary_rejected(self):
        with pytest.raises(ValueError, match="binary"):
            MLPClassifier(epochs=1).fit(np.zeros((3, 2)), np.array([0.0, 1.0, 2.0]))


class TestRegressors:
    def test_mlp_regressor_fits_linear_map(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(400, 3))
        y = X @ np.array([1.0, -2.0, 0.5])
        reg = MLPRegressor(3, (32, 16), lr=5e-3, rng=0)
        for _ in range(400):
            reg.partial_fit(X, y)
        assert reg.mse(X, y) < 0.05

    def test_set_embedding_regressor_fits_bundle_values(self):
        rng = np.random.default_rng(1)
        item_value = rng.normal(0, 1, 8)
        bundles = [rng.choice(8, size=rng.integers(1, 5), replace=False) for _ in range(300)]
        y = np.array([item_value[b].mean() for b in bundles])
        reg = SetEmbeddingRegressor(8, embed_dim=8, hidden=(32, 16), lr=5e-3, rng=0)
        for _ in range(300):
            reg.partial_fit(bundles, y)
        assert reg.mse(bundles, y) < 0.05

    def test_partial_fit_reduces_loss(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 2))
        y = X[:, 0] * 2
        reg = MLPRegressor(2, (16,), lr=1e-2, rng=0)
        first = reg.partial_fit(X, y)
        for _ in range(100):
            last = reg.partial_fit(X, y)
        assert last < first

    def test_bad_feature_ids_rejected(self):
        reg = SetEmbeddingRegressor(4, rng=0)
        with pytest.raises(ValueError, match="feature ids"):
            reg.predict([[9]])

    def test_input_width_validated(self):
        reg = MLPRegressor(3, rng=0)
        with pytest.raises(ValueError, match="expected 3"):
            reg.predict(np.zeros((2, 5)))
