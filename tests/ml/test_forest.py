"""Tests for the Random Forest classifier."""

import numpy as np
import pytest

from repro.ml import DecisionTreeClassifier, RandomForestClassifier


def noisy_blobs(n=400, seed=0):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n)
    X = rng.normal(0, 1.0, size=(n, 6))
    X[:, 0] += 1.6 * y
    X[:, 1] -= 1.2 * y
    return X, y.astype(float)


class TestRandomForest:
    def test_learns_noisy_data(self):
        X, y = noisy_blobs()
        Xte, yte = noisy_blobs(seed=1)
        forest = RandomForestClassifier(25, max_depth=6, rng=0).fit(X, y)
        # Bayes-optimal accuracy for this separation is ~0.84.
        assert forest.score(Xte, yte.astype(int)) > 0.75

    def test_ensemble_beats_single_deep_tree_out_of_sample(self):
        X, y = noisy_blobs(seed=2)
        Xte, yte = noisy_blobs(seed=3)
        tree = DecisionTreeClassifier(max_depth=12, rng=0).fit(X, y)
        forest = RandomForestClassifier(30, max_depth=12, rng=0).fit(X, y)
        assert forest.score(Xte, yte.astype(int)) >= tree.score(Xte, yte.astype(int))

    def test_deterministic_given_rng(self):
        X, y = noisy_blobs(100)
        p1 = RandomForestClassifier(5, rng=9).fit(X, y).predict_proba(X)
        p2 = RandomForestClassifier(5, rng=9).fit(X, y).predict_proba(X)
        np.testing.assert_array_equal(p1, p2)

    def test_different_seeds_differ(self):
        X, y = noisy_blobs(100)
        p1 = RandomForestClassifier(5, rng=1).fit(X, y).predict_proba(X)
        p2 = RandomForestClassifier(5, rng=2).fit(X, y).predict_proba(X)
        assert not np.allclose(p1, p2)

    def test_probabilities_bounded(self):
        X, y = noisy_blobs(100)
        proba = RandomForestClassifier(10, rng=0).fit(X, y).predict_proba(X)
        assert proba.min() >= 0.0 and proba.max() <= 1.0

    def test_no_bootstrap_trees_differ_only_by_features(self):
        X, y = noisy_blobs(100)
        forest = RandomForestClassifier(
            4, bootstrap=False, max_features=2, rng=0
        ).fit(X, y)
        assert len(forest.trees_) == 4

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ValueError, match="fit"):
            RandomForestClassifier(2).predict(np.zeros((1, 2)))

    def test_n_estimators_validation(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(0)
