"""Tests for classification/regression metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    f1_score,
    log_loss,
    mean_absolute_error,
    mean_squared_error,
    precision,
    recall,
    roc_auc,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([0, 1, 1], [0, 1, 1]) == 1.0

    def test_half(self):
        assert accuracy([0, 0, 1, 1], [0, 1, 0, 1]) == 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            accuracy([0, 1], [0])


class TestConfusionDerived:
    def test_confusion_matrix_layout(self):
        cm = confusion_matrix([0, 0, 1, 1, 1], [0, 1, 1, 1, 0])
        np.testing.assert_array_equal(cm, [[1, 1], [1, 2]])

    def test_precision_recall_f1(self):
        y_true = [0, 0, 1, 1, 1]
        y_pred = [0, 1, 1, 1, 0]
        assert precision(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_zero_division_guards(self):
        assert precision([1, 1], [0, 0]) == 0.0
        assert recall([0, 0], [0, 0]) == 0.0
        assert f1_score([0, 0], [0, 0]) == 0.0

    def test_nonbinary_rejected(self):
        with pytest.raises(ValueError, match="binary"):
            confusion_matrix([0, 2], [0, 1])


class TestRocAuc:
    def test_perfect_ranking(self):
        assert roc_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_ranking(self):
        assert roc_auc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 4000)
        s = rng.random(4000)
        assert roc_auc(y, s) == pytest.approx(0.5, abs=0.03)

    def test_ties_averaged(self):
        # All scores identical -> AUC is exactly 0.5.
        assert roc_auc([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="both classes"):
            roc_auc([1, 1], [0.2, 0.4])


class TestLossMetrics:
    def test_log_loss_confident_correct(self):
        assert log_loss([1, 0], [0.99, 0.01]) < 0.02

    def test_log_loss_clips_extremes(self):
        assert np.isfinite(log_loss([1], [0.0]))

    def test_mse(self):
        assert mean_squared_error([1.0, 2.0], [1.0, 4.0]) == pytest.approx(2.0)

    def test_mae(self):
        assert mean_absolute_error([1.0, 2.0], [2.0, 4.0]) == pytest.approx(1.5)
