"""Tests for the histogram CART tree, including a brute-force oracle check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.tree import DecisionTreeClassifier, quantile_bin


def blobs(n=200, seed=0, noise=0.6):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n)
    X = rng.normal(0, noise, size=(n, 3))
    X[:, 0] += 2.0 * y
    return X, y.astype(float)


class TestQuantileBin:
    def test_indicator_features_bin_exactly(self):
        X = np.array([[0.0], [1.0], [0.0], [1.0]])
        design = quantile_bin(X)
        assert design.edges[0].shape == (1,)
        np.testing.assert_array_equal(design.codes[:, 0], [0, 1, 0, 1])

    def test_codes_within_bins(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 4))
        design = quantile_bin(X, max_bins=16)
        assert design.codes.max() < 16

    def test_monotone_in_value(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        design = quantile_bin(X, max_bins=8)
        assert np.all(np.diff(design.codes[:, 0].astype(int)) >= 0)

    def test_max_bins_bounds(self):
        with pytest.raises(ValueError):
            quantile_bin(np.zeros((3, 1)), max_bins=1)
        with pytest.raises(ValueError):
            quantile_bin(np.zeros((3, 1)), max_bins=500)

    def test_non_finite_values_rejected(self):
        # NaN would poison edges silently (and NaN != NaN breaks the
        # distinct-value count); binning happens after imputation.
        X = np.ones((10, 2))
        X[3, 1] = np.nan
        with pytest.raises(ValueError, match="finite"):
            quantile_bin(X)
        X[3, 1] = np.inf
        with pytest.raises(ValueError, match="finite"):
            quantile_bin(X)

    def test_matches_per_column_reference(self):
        """The batched implementation equals the per-column formulation
        bit for bit (edges and codes)."""
        rng = np.random.default_rng(3)
        X = np.hstack([
            rng.normal(size=(300, 3)),               # dense columns
            np.round(rng.normal(size=(300, 2)), 0),  # low-cardinality
            (rng.normal(size=(300, 2)) > 0).astype(float),  # indicators
        ])
        quantiles = np.linspace(0, 1, 33)[1:-1]
        design = quantile_bin(X, max_bins=32)
        for j in range(X.shape[1]):
            col = X[:, j]
            uniq = np.unique(col)
            if uniq.shape[0] <= 32:
                cut = (uniq[:-1] + uniq[1:]) / 2.0
            else:
                cut = np.unique(np.quantile(col, quantiles))
            np.testing.assert_array_equal(design.edges[j], cut)
            np.testing.assert_array_equal(
                design.codes[:, j], np.searchsorted(cut, col, side="right")
            )


class TestDecisionTree:
    def test_separable_data_fits_perfectly(self):
        X, y = blobs(noise=0.1)
        tree = DecisionTreeClassifier(max_depth=3, rng=0).fit(X, y)
        assert tree.score(X, y.astype(int)) == 1.0

    def test_max_depth_respected(self):
        X, y = blobs(400, noise=1.5)
        tree = DecisionTreeClassifier(max_depth=2, rng=0).fit(X, y)
        assert tree.depth_ <= 2

    def test_min_samples_leaf(self):
        X, y = blobs(100)
        tree = DecisionTreeClassifier(max_depth=10, min_samples_leaf=20, rng=0).fit(X, y)
        # Count rows per leaf by prediction path.
        proba = tree.predict_proba(X)
        # Every leaf must have >= 20 training rows, so each distinct
        # leaf probability accounts for >= 20 predictions.
        _, counts = np.unique(proba, return_counts=True)
        assert counts.min() >= 20

    def test_pure_node_stops(self):
        X = np.array([[0.0], [0.1], [0.9], [1.0]])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        tree = DecisionTreeClassifier(max_depth=10, rng=0).fit(X, y)
        assert tree.n_nodes_ == 3  # root + two pure leaves

    def test_nonbinary_labels_rejected(self):
        with pytest.raises(ValueError, match="binary"):
            DecisionTreeClassifier(rng=0).fit(np.zeros((4, 1)), np.array([0, 1, 2, 1]))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ValueError, match="fit"):
            DecisionTreeClassifier(rng=0).predict(np.zeros((1, 1)))

    def test_constant_labels_single_leaf(self):
        X = np.random.default_rng(0).normal(size=(30, 2))
        tree = DecisionTreeClassifier(rng=0).fit(X, np.zeros(30))
        assert tree.n_nodes_ == 1
        assert np.all(tree.predict(X) == 0)

    def test_deterministic_given_rng(self):
        X, y = blobs(300, noise=1.0)
        t1 = DecisionTreeClassifier(max_depth=5, max_features=2, rng=3).fit(X, y)
        t2 = DecisionTreeClassifier(max_depth=5, max_features=2, rng=3).fit(X, y)
        np.testing.assert_array_equal(t1.predict_proba(X), t2.predict_proba(X))

    def test_probabilities_are_leaf_means(self):
        X, y = blobs(200, noise=1.2)
        tree = DecisionTreeClassifier(max_depth=3, rng=0).fit(X, y)
        proba = tree.predict_proba(X)
        assert proba.min() >= 0.0 and proba.max() <= 1.0


def brute_force_stump_impurity(X, y):
    """Exhaustive weighted-gini search over all midpoint thresholds."""
    n = len(y)
    best = np.inf
    for j in range(X.shape[1]):
        values = np.unique(X[:, j])
        for threshold in (values[:-1] + values[1:]) / 2:
            left = X[:, j] <= threshold
            nl, nr = left.sum(), n - left.sum()
            if nl == 0 or nr == 0:
                continue
            pl = y[left].mean()
            pr = y[~left].mean()
            imp = nl * 2 * pl * (1 - pl) + nr * 2 * pr * (1 - pr)
            best = min(best, imp)
    return best


def stump_impurity(tree, X, y):
    left = X[:, tree.feature_[0]] <= tree.threshold_[0]
    nl, nr = left.sum(), len(y) - left.sum()
    pl = y[left].mean()
    pr = y[~left].mean()
    return nl * 2 * pl * (1 - pl) + nr * 2 * pr * (1 - pr)


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=1),
        ),
        min_size=8,
        max_size=60,
    )
)
def test_stump_matches_brute_force_oracle(data):
    """Depth-1 tree finds the globally gini-optimal split (property test).

    With few distinct values, quantile binning is exact, so the
    histogram split search must match exhaustive enumeration.
    """
    X = np.array([[a, b] for a, b, _ in data], dtype=float)
    y = np.array([c for _, _, c in data], dtype=float)
    if y.min() == y.max():
        return  # pure data: nothing to split
    tree = DecisionTreeClassifier(max_depth=1, max_bins=64, rng=0).fit(X, y)
    oracle = brute_force_stump_impurity(X, y)
    if tree.feature_[0] == -1:
        # Tree declined to split: only legal if no split improves purity.
        parent = len(y) * 2 * y.mean() * (1 - y.mean())
        assert oracle >= parent - 1e-9
    else:
        achieved = stump_impurity(tree, X, y)
        assert achieved == pytest.approx(oracle, abs=1e-9)
