"""Tests for logistic regression and model selection."""

import numpy as np
import pytest

from repro.ml import KFold, LogisticRegression, cross_val_score


def separable(n=200, seed=0):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, n)
    X = rng.normal(0, 0.5, size=(n, 2))
    X[:, 0] += 3.0 * y
    return X, y.astype(float)


class TestLogisticRegression:
    def test_fits_separable(self):
        X, y = separable()
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y.astype(int)) > 0.97

    def test_proba_bounds_and_monotonicity(self):
        X, y = separable()
        model = LogisticRegression().fit(X, y)
        p = model.predict_proba(X)
        assert p.min() >= 0 and p.max() <= 1
        # Larger x0 -> larger probability (positive weight learned).
        grid = np.column_stack([np.linspace(-2, 5, 20), np.zeros(20)])
        assert np.all(np.diff(model.predict_proba(grid)) >= 0)

    def test_l2_shrinks_weights(self):
        X, y = separable()
        loose = LogisticRegression(l2=0.0).fit(X, y)
        tight = LogisticRegression(l2=1.0).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_unfit_predict_rejected(self):
        with pytest.raises(ValueError, match="fit"):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_nonbinary_rejected(self):
        with pytest.raises(ValueError, match="binary"):
            LogisticRegression().fit(np.zeros((3, 1)), [0.0, 0.5, 1.0])


class TestKFold:
    def test_folds_partition_everything(self):
        folds = list(KFold(4, rng=0).split(22))
        all_test = np.sort(np.concatenate([te for _, te in folds]))
        np.testing.assert_array_equal(all_test, np.arange(22))

    def test_train_test_disjoint(self):
        for train, test in KFold(3, rng=1).split(30):
            assert not set(train) & set(test)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            list(KFold(5, rng=0).split(3))

    def test_n_splits_validated(self):
        with pytest.raises(ValueError):
            KFold(1)


class TestCrossValScore:
    def test_scores_high_on_separable(self):
        X, y = separable(150)
        scores = cross_val_score(
            lambda: LogisticRegression(), X, y, n_splits=3, rng=0
        )
        assert scores.shape == (3,)
        assert scores.mean() > 0.9
