"""Elastic fleet end to end: join, pull, steal, adopt — digest-pinned.

Coordinators here are real ``create_server`` instances; workers are
real :class:`~repro.fleet.agent.FleetAgent` threads leasing over HTTP.
Every sweep must merge to the same digest as the single-process
:class:`~repro.simulate.pool.SessionPool` path, whatever the
join/leave/kill interleaving — that is the tentpole contract.
"""

import threading
import time

import pytest

from repro.client import MarketplaceClient
from repro.fleet.agent import FleetAgent
from repro.fleet.executor import FleetExecutor
from repro.jobs import JobStore
from repro.service import (
    MarketPool,
    SessionManager,
    SimulationSpec,
    create_server,
    run_simulation,
)
from repro.service.server import JobService

SPEC = SimulationSpec(sessions=120, seed=11, batch_size=32)


def _coordinator(store, *, lease_ttl=30.0, heartbeat_ttl=30.0):
    server = create_server(
        port=0,
        manager=SessionManager(pool=MarketPool()),
        jobs=JobService(store, lease_ttl=lease_ttl,
                        heartbeat_ttl=heartbeat_ttl),
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server, "http://%s:%s" % server.server_address[:2]


def _stop(server):
    server.shutdown()
    server.server_close()


@pytest.fixture
def store(tmp_path):
    return JobStore(str(tmp_path / "jobs.sqlite3"))


@pytest.fixture(scope="module")
def reference_digest():
    return run_simulation(SPEC)[2].digest()


def _wait_done(client, job_id, timeout=120.0):
    return client.wait_job(job_id, timeout=timeout)


class TestFleetSweep:
    def test_two_joined_workers_drain_to_reference_digest(
        self, store, reference_digest
    ):
        server, url = _coordinator(store)
        agents = [
            FleetAgent(url, f"http://worker-{i}.test", capacity=2,
                       poll=0.05, heartbeat_interval=0.2)
            for i in range(2)
        ]
        try:
            for agent in agents:
                agent.start()
            with MarketplaceClient.connect(url) as client:
                submitted = client.submit_simulation(SPEC, chunks=6,
                                                     fleet=True)
                final = _wait_done(client, submitted["job"])
                assert final["status"] == "done"
                assert final["digest"] == reference_digest
                status = client.fleet_status()
                assert len(status["workers"]) == 2
                assert status["queue"] == 0
        finally:
            for agent in agents:
                agent.stop()
            _stop(server)

    def test_late_joiner_picks_up_a_waiting_queue(self, store,
                                                  reference_digest):
        """Submitting before any worker exists parks the queue; the
        first join drains it."""
        server, url = _coordinator(store)
        agent = FleetAgent(url, "http://late.test", capacity=2,
                           poll=0.05, heartbeat_interval=0.2)
        try:
            with MarketplaceClient.connect(url) as client:
                submitted = client.submit_simulation(SPEC, chunks=4,
                                                     fleet=True)
                time.sleep(0.3)
                assert client.job(submitted["job"])["chunks_done"] == 0
                agent.start()
                final = _wait_done(client, submitted["job"])
                assert final["digest"] == reference_digest
        finally:
            agent.stop()
            _stop(server)

    def test_worker_chunk_error_fails_the_job(self, store):
        """A chunk that *raises* on its worker fails the job (no retry
        loop) — a bad spec raises identically everywhere."""
        server, url = _coordinator(store)
        agent = FleetAgent(url, "http://bad.test", poll=0.05,
                           heartbeat_interval=0.2)
        record = store.submit("simulation", {"sessions": "nonsense"},
                              [(0, 1)])
        try:
            agent.start()
            with MarketplaceClient.connect(url) as client:
                client.resume_job(record.job_id, fleet=True)
                final = _wait_done(client, record.job_id)
                assert final["status"] == "failed"
                assert agent.worker_id in final["error"]
        finally:
            agent.stop()
            _stop(server)


class TestCrashAdoption:
    def test_coordinator_restart_adopts_workers_and_resumes(
        self, store, reference_digest
    ):
        """Kill the coordinator mid-sweep; a fresh one on the same store
        re-adopts the (still-heartbeating) workers from their next pulse
        and the resumed job reaches the reference digest."""
        server, url = _coordinator(store)
        agent = FleetAgent(url, "http://survivor.test", capacity=1,
                           poll=0.05, heartbeat_interval=0.2,
                           throttle=0.1)
        try:
            agent.start()
            with MarketplaceClient.connect(url) as client:
                submitted = client.submit_simulation(SPEC, chunks=6,
                                                     fleet=True)
                job_id = submitted["job"]
                deadline = time.monotonic() + 60
                while client.job(job_id)["chunks_done"] == 0:
                    assert time.monotonic() < deadline
                    time.sleep(0.05)
            # Hard stop — no drain, mid-sweep.  The agent keeps running
            # and rides out the outage on its retry loops.
            _stop(server)

            # Restart "the coordinator" on the same port-agnostic store.
            server2, url2 = _coordinator(store)
            agent.coordinator = url2.rstrip("/")  # same worker, new door
            agent._registered.clear()
            with MarketplaceClient.connect(url2) as client:
                partial = client.job(job_id)
                assert 0 < partial["chunks_done"] < partial["chunks"]
                resumed = client.resume_job(job_id, fleet=True)
                assert resumed["started"]
                final = _wait_done(client, job_id)
                assert final["status"] == "done"
                assert final["digest"] == reference_digest
                # The worker row survived the restart in the store and
                # was re-adopted, not re-created.
                status = client.fleet_status()
                assert [w["worker"] for w in status["workers"]] == [
                    agent.worker_id
                ]
            _stop(server2)
        finally:
            agent.stop(deregister=False)

    def test_lost_worker_chunks_are_stolen_by_survivor(
        self, store, reference_digest
    ):
        """A worker that vanishes mid-chunk loses its lease to the
        survivor once its heartbeat goes stale."""
        server, url = _coordinator(store, lease_ttl=1.0, heartbeat_ttl=0.6)
        doomed = FleetAgent(url, "http://doomed.test", poll=0.05,
                            heartbeat_interval=0.2, throttle=5.0)
        try:
            doomed.start()
            with MarketplaceClient.connect(url) as client:
                submitted = client.submit_simulation(SPEC, chunks=4,
                                                     fleet=True)
                job_id = submitted["job"]
                time.sleep(0.3)  # let the doomed worker grab a lease
                # Vanish without deregistering (kill -9 semantics: the
                # throttle keeps its one chunk in flight forever).
                doomed.stop(deregister=False, timeout=0.1)

                survivor = FleetAgent(url, "http://survivor.test",
                                      capacity=2, poll=0.05,
                                      heartbeat_interval=0.2)
                survivor.start()
                try:
                    final = _wait_done(client, job_id)
                    assert final["status"] == "done"
                    assert final["digest"] == reference_digest
                finally:
                    survivor.stop()
        finally:
            doomed.stop(deregister=False, timeout=0.1)
            _stop(server)


class TestFleetExecutorLocal:
    def test_idle_timeout_leaves_job_resumable(self, store):
        executor = FleetExecutor(store, poll=0.02, idle_timeout=0.1)
        record = executor.submit(SPEC, chunks=4)
        record = executor.run(record.job_id)
        assert record.status == "interrupted"
        assert record.done_chunks == 0

    def test_max_chunks_budget_interrupts(self, store, reference_digest):
        """max_chunks bounds completions per invocation — the CI drill
        hook — and a later unbounded run finishes the job."""
        from repro.fleet.manager import FleetManager
        from repro.jobs.executor import CHUNK_RUNNERS

        fleet = FleetManager(store)
        record = None
        done = threading.Event()

        def inline_worker():
            wid = fleet.register("http://inline.test")["worker"]
            while not done.is_set():
                lease = fleet.lease(wid)["lease"]
                if lease is None:
                    time.sleep(0.02)
                    continue
                payload = CHUNK_RUNNERS[lease["kind"]](
                    lease["spec"], lease["start"], lease["stop"]
                )
                fleet.complete(wid, lease["job"], lease["chunk"], payload)

        thread = threading.Thread(target=inline_worker, daemon=True)
        thread.start()
        try:
            first = FleetExecutor(store, fleet=fleet, max_chunks=2,
                                  poll=0.02)
            record = first.run(first.submit(SPEC, chunks=6).job_id)
            assert record.status == "interrupted"
            assert record.done_chunks >= 2

            second = FleetExecutor(store, fleet=fleet, poll=0.02)
            record = second.run(record.job_id)
            assert record.status == "done"
            assert record.digest == reference_digest
        finally:
            done.set()
            thread.join(timeout=5)
