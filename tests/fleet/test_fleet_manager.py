"""Fleet policy unit tests: registration, heartbeats, the lease queue.

Everything here drives :class:`~repro.fleet.manager.FleetManager`
directly over a store file — no HTTP — so the semantics (content-
addressed identity, crash adoption, deterministic lease order, steal on
expiry, idempotent duplicate completion, fail-fast on chunk errors) are
pinned independently of any transport.
"""

import time

import pytest

from repro.fleet.manager import FleetManager, worker_id_for
from repro.jobs import JobStore
from repro.jobs.executor import CHUNK_RUNNERS, submit_simulation
from repro.service.specs import SimulationSpec

SPEC = SimulationSpec(sessions=24, seed=3, batch_size=8)


@pytest.fixture
def store(tmp_path):
    return JobStore(str(tmp_path / "jobs.sqlite3"))


@pytest.fixture
def fleet(store):
    return FleetManager(store, lease_ttl=30.0, heartbeat_ttl=30.0)


def _run(lease):
    return CHUNK_RUNNERS[lease["kind"]](
        lease["spec"], lease["start"], lease["stop"]
    )


class TestIdentity:
    def test_worker_id_is_content_addressed_from_url(self):
        assert worker_id_for("http://a:1") == worker_id_for("http://a:1/")
        assert worker_id_for("http://a:1") != worker_id_for("http://a:2")
        assert worker_id_for("http://a:1").startswith("w")

    def test_reregistration_is_adoption_not_duplication(self, store, fleet):
        first = fleet.register("http://a:1", capacity=1)
        again = fleet.register("http://a:1/", capacity=4,
                               labels={"host": "a"})
        assert first["worker"] == again["worker"]
        assert not first["adopted"] and again["adopted"]
        assert len(store.workers()) == 1
        # The re-registration updated capacity and labels in place.
        assert store.worker(first["worker"])["capacity"] == 4

    def test_register_reply_carries_ttls(self, fleet):
        row = fleet.register("http://a:1")
        assert row["lease_ttl"] == 30.0
        assert row["heartbeat_ttl"] == 30.0


class TestHeartbeats:
    def test_heartbeat_updates_watermark_and_load(self, store, fleet):
        wid = fleet.register("http://a:1")["worker"]
        pulse = fleet.heartbeat(wid, {"sessions": 1, "chunks": 2})
        assert pulse["status"] == "live" and not pulse["adopted"]
        assert pulse["lag"] >= 0.0
        assert store.worker(wid)["load"] == {"sessions": 1, "chunks": 2}

    def test_heartbeat_of_unknown_worker_raises_keyerror(self, fleet):
        with pytest.raises(KeyError):
            fleet.heartbeat("w000000000000", None)

    def test_stale_worker_is_lost_and_heartbeat_readopts(self, store):
        fleet = FleetManager(store, lease_ttl=30.0, heartbeat_ttl=0.05)
        wid = fleet.register("http://a:1")["worker"]
        time.sleep(0.1)
        swept = fleet.expire()
        assert wid in swept["lost"]
        assert store.worker(wid)["status"] == "lost"
        # The next pulse is the crash-adoption path.
        pulse = fleet.heartbeat(wid, None)
        assert pulse["adopted"]
        assert store.worker(wid)["status"] == "live"

    def test_deregister_marks_left_and_is_idempotent(self, store, fleet):
        wid = fleet.register("http://a:1")["worker"]
        assert fleet.deregister(wid)["left"]
        assert store.worker(wid)["status"] == "left"
        assert not fleet.deregister(wid)["left"]
        assert not fleet.deregister("w000000000000")["left"]


class TestLeaseQueue:
    def test_empty_queue_leases_none(self, fleet):
        wid = fleet.register("http://a:1")["worker"]
        assert fleet.lease(wid) == {"lease": None}

    def test_lease_order_is_deterministic(self, store, fleet):
        record = submit_simulation(store, SPEC, chunks=4)
        wid = fleet.register("http://a:1")["worker"]
        granted = [fleet.lease(wid)["lease"]["chunk"] for _ in range(4)]
        assert granted == [0, 1, 2, 3]
        assert fleet.lease(wid)["lease"] is None  # all leased out
        assert record.job_id == fleet.status()["leases"][0]["job"]

    def test_lease_carries_everything_a_worker_needs(self, store, fleet):
        submit_simulation(store, SPEC, chunks=2)
        wid = fleet.register("http://a:1")["worker"]
        lease = fleet.lease(wid)["lease"]
        assert lease["kind"] == "simulation"
        assert lease["spec"] == SPEC.to_dict()
        assert (lease["start"], lease["stop"]) == (0, 12)
        assert lease["ttl"] == 30.0 and lease["deadline"] > 0
        assert lease["stolen_from"] is None

    def test_completion_records_chunk_durably(self, store, fleet):
        record = submit_simulation(store, SPEC, chunks=2)
        wid = fleet.register("http://a:1")["worker"]
        for _ in range(2):
            lease = fleet.lease(wid)["lease"]
            reply = fleet.complete(wid, lease["job"], lease["chunk"],
                                   _run(lease), elapsed=0.01)
            assert reply["first"]
        assert store.pending_chunks(record.job_id) == []
        assert store.queue_depth() == 0

    def test_expired_lease_is_stolen_by_another_worker(self, store):
        fleet = FleetManager(store, lease_ttl=0.05, heartbeat_ttl=30.0)
        submit_simulation(store, SPEC, chunks=1)
        slow = fleet.register("http://slow:1")["worker"]
        fast = fleet.register("http://fast:1")["worker"]
        first = fleet.lease(slow)["lease"]
        assert fleet.lease(fast)["lease"] is None  # still held
        time.sleep(0.1)
        stolen = fleet.lease(fast)["lease"]
        assert stolen["chunk"] == first["chunk"]
        assert stolen["stolen_from"] == slow

    def test_duplicate_completion_of_stolen_chunk_is_harmless(self, store):
        fleet = FleetManager(store, lease_ttl=0.05, heartbeat_ttl=30.0)
        record = submit_simulation(store, SPEC, chunks=1)
        slow = fleet.register("http://slow:1")["worker"]
        fast = fleet.register("http://fast:1")["worker"]
        lease = fleet.lease(slow)["lease"]
        time.sleep(0.1)
        stolen = fleet.lease(fast)["lease"]
        payload = _run(lease)
        assert fleet.complete(fast, stolen["job"], stolen["chunk"],
                              payload)["first"]
        # The original holder comes back late with the same payload
        # (chunks are deterministic): recorded as a duplicate, the
        # stored result is untouched.
        assert not fleet.complete(slow, lease["job"], lease["chunk"],
                                  payload)["first"]
        assert store.get(record.job_id).done_chunks == 1

    def test_lost_worker_leases_requeue(self, store):
        fleet = FleetManager(store, lease_ttl=30.0, heartbeat_ttl=0.05)
        submit_simulation(store, SPEC, chunks=1)
        wid = fleet.register("http://a:1")["worker"]
        assert fleet.lease(wid)["lease"] is not None
        time.sleep(0.1)
        survivor = fleet.register("http://b:1")["worker"]
        # The sweep inside lease() marks a stale holder lost and frees
        # its lease even though the lease's own deadline is far out.
        lease = fleet.lease(survivor)["lease"]
        assert lease is not None and lease["stolen_from"] == wid

    def test_failed_chunk_fails_the_job_and_frees_the_lease(self, store,
                                                            fleet):
        record = submit_simulation(store, SPEC, chunks=2)
        wid = fleet.register("http://a:1")["worker"]
        lease = fleet.lease(wid)["lease"]
        fleet.fail(wid, lease["job"], lease["chunk"], "ValueError('bad')")
        current = store.get(record.job_id)
        assert current.status == "failed"
        assert "ValueError" in current.error and wid in current.error
        assert fleet.status()["leases"] == []

    def test_status_reports_queue_depth(self, store, fleet):
        submit_simulation(store, SPEC, chunks=4)
        wid = fleet.register("http://a:1")["worker"]
        assert fleet.status()["queue"] == 4
        fleet.lease(wid)
        status = fleet.status()
        assert status["queue"] == 3  # leased chunks are off the queue
        assert len(status["leases"]) == 1
        assert len(status["workers"]) == 1
