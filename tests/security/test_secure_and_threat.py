"""Tests for blinded comparison, secure payment, and the leakage attack."""

import numpy as np
import pytest

from repro.market import FeatureBundle, QuotedPrice
from repro.security import (
    attack_advantage,
    encrypted_gain,
    generate_keypair,
    marginal_value_attack,
    rank_correlation,
    secure_payment,
    secure_threshold_check,
)
from repro.utils import spawn


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(bits=256, rng=0)


class TestSecureThresholdCheck:
    def test_correct_above(self, keypair):
        pub, priv = keypair
        enc = encrypted_gain(0.15, pub, rng=1)
        assert secure_threshold_check(enc, 0.1, priv, rng=2).result

    def test_correct_below(self, keypair):
        pub, priv = keypair
        enc = encrypted_gain(0.05, pub, rng=1)
        assert not secure_threshold_check(enc, 0.1, priv, rng=2).result

    def test_blinding_hides_magnitude(self, keypair):
        """Two different gains produce overlapping blinded outputs."""
        pub, priv = keypair
        outs_a = [
            secure_threshold_check(
                encrypted_gain(0.12, pub, rng=i), 0.1, priv, rng=spawn(i, "s")
            ).blinded_value
            for i in range(30)
        ]
        outs_b = [
            secure_threshold_check(
                encrypted_gain(0.4, pub, rng=i), 0.1, priv, rng=spawn(i, "t")
            ).blinded_value
            for i in range(30)
        ]
        # The ranges overlap: magnitude alone cannot identify the gain.
        assert max(outs_a) > min(outs_b)

    def test_boundary(self, keypair):
        pub, priv = keypair
        enc = encrypted_gain(0.1, pub, rng=1)
        assert secure_threshold_check(enc, 0.1, priv, rng=2).result


class TestSecurePayment:
    def quote(self):
        return QuotedPrice(rate=10.0, base=1.0, cap=3.0)  # TP = 0.2

    @pytest.mark.parametrize("gain", [-0.5, 0.0, 0.05, 0.15, 0.2, 0.5])
    def test_matches_plaintext_payment(self, keypair, gain):
        pub, priv = keypair
        enc = encrypted_gain(gain, pub, rng=3)
        pay = secure_payment(enc, self.quote(), priv, rng=4)
        assert pay == pytest.approx(self.quote().payment(gain), abs=1e-6)


class TestLeakageAttack:
    def transcript(self, values, n_obs=120, seed=0):
        rng = spawn(seed, "attack")
        obs = []
        max_size = min(5, len(values))
        for _ in range(n_obs):
            size = int(rng.integers(1, max_size + 1))
            bundle = FeatureBundle.of(rng.choice(len(values), size=size, replace=False))
            gain = float(np.sum(values[list(bundle)])) + float(rng.normal(0, 0.002))
            obs.append((bundle, gain))
        return obs

    def test_plaintext_transcript_leaks_feature_values(self):
        values = np.array([0.0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.0, 0.02])
        obs = self.transcript(values)
        advantage = attack_advantage(obs, values)
        assert advantage > 0.8  # near-total recovery of the ordering

    def test_blinded_transcript_degrades_attack(self):
        """With the §3.6 mitigation, only blinded signs leak.

        One sign bit per round still carries *ordinal* information over
        a long transcript (an inherent property of any comparison
        protocol), but quantitative recovery collapses: the regressed
        marginal values are uniform-noise-scaled and useless as value
        estimates, unlike the near-exact plaintext recovery.
        """
        values = np.array([0.0, 0.01, 0.02, 0.03, 0.04, 0.05, 0.0, 0.02])
        rng = spawn(1, "blind")
        obs = self.transcript(values, seed=1)
        blinded = [
            (b, float(np.sign(g - 0.05) * rng.uniform(1, 1000))) for b, g in obs
        ]
        recovered = marginal_value_attack(blinded, len(values))
        # Quantitative estimates are off by orders of magnitude...
        assert np.abs(recovered - values).max() > 10.0
        # ...whereas the plaintext transcript recovers them to ~1e-3.
        plain = marginal_value_attack(obs, len(values))
        assert np.abs(plain - values).max() < 5e-3

    def test_marginal_values_recovered_quantitatively(self):
        values = np.array([0.01, 0.02, 0.03, 0.04])
        obs = self.transcript(values, n_obs=200, seed=2)
        recovered = marginal_value_attack(obs, 4)
        np.testing.assert_allclose(recovered, values, atol=5e-3)

    def test_rank_correlation_bounds(self):
        a = np.array([1.0, 2.0, 3.0])
        assert rank_correlation(a, a) == pytest.approx(1.0)
        assert rank_correlation(a, -a) == pytest.approx(-1.0)

    def test_empty_transcript_rejected(self):
        with pytest.raises(ValueError):
            marginal_value_attack([], 3)
