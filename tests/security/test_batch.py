"""The packed secure-bargaining path: value identity and determinism.

The acceptance contract of :mod:`repro.security.batch`: batched
payments and comparison bits are **value-identical** to the retained
seed serial path for every input, independent of key size, pack
grouping, and blind draws — which is what lets the simulator and the
sharded executor settle secure sessions without digest drift.
"""

import numpy as np
import pytest

from repro.market.pricing import QuotedPrice
from repro.security import (
    ObfuscationPool,
    SecureSettlement,
    generate_keypair,
    secure_payment_batch,
    secure_payment_serial_reference,
    secure_threshold_check_batch,
    secure_threshold_check_serial_reference,
    settlement_for,
)
from repro.utils.rng import spawn


@pytest.fixture(scope="module")
def keys():
    return generate_keypair(bits=256, seed=99)


def _round(seed, n):
    rng = spawn(seed, "round")
    gains = [float(g) for g in rng.uniform(-0.9, 5.0, n)]
    quotes = [
        QuotedPrice(
            rate=float(rng.uniform(0.5, 80.0)),
            base=float(rng.uniform(0.0, 20.0)),
            cap=float(rng.uniform(20.0, 300.0)),
        )
        for _ in range(n)
    ]
    return gains, quotes


class TestValueIdentity:
    @pytest.mark.parametrize("n", [1, 2, 7, 40])
    def test_payments_bit_for_bit_equal_serial(self, keys, n):
        pub, priv = keys
        gains, quotes = _round(n, n)
        serial = secure_payment_serial_reference(
            gains, quotes, pub, priv, rng=spawn(0, "serial", n))
        batched = secure_payment_batch(
            gains, quotes, pub, priv, rng=spawn(0, "batched", n))
        assert batched == serial  # exact float equality, not approx

    def test_threshold_bits_equal_serial(self, keys):
        pub, priv = keys
        gains, _ = _round(5, 30)
        thresholds = [float(t) for t in spawn(6, "t").uniform(-0.9, 5.0, 30)]
        serial = secure_threshold_check_serial_reference(
            gains, thresholds, pub, priv, rng=spawn(7, "s"))
        batched = secure_threshold_check_batch(
            gains, thresholds, pub, priv, rng=spawn(8, "b"))
        assert [c.result for c in batched] == [c.result for c in serial]
        # Blinds differ between the paths, but every blinded value must
        # agree with its bit in sign.
        for check in batched:
            assert (check.blinded_value >= 0.0) == check.result

    def test_payment_regions_cap_floor_linear(self, keys):
        """The adaptive short-circuit hits all three serial branches."""
        pub, priv = keys
        quote = QuotedPrice(rate=10.0, base=1.0, cap=3.0)  # turning point 0.2
        gains = [-0.5, 0.0, 0.1, 0.19, 0.2, 0.3, 5.0]
        quotes = [quote] * len(gains)
        serial = secure_payment_serial_reference(
            gains, quotes, pub, priv, rng=spawn(1, "s"))
        batched = secure_payment_batch(
            gains, quotes, pub, priv, rng=spawn(2, "b"))
        assert batched == serial
        assert batched[0] == quote.base and batched[-1] == quote.cap

    def test_identity_across_key_sizes(self):
        """Slot values are exact integers: results never depend on n."""
        gains, quotes = _round(3, 13)
        results = []
        for bits in (128, 256, 512):
            pub, priv = generate_keypair(bits=bits, seed=5)
            results.append(secure_payment_batch(
                gains, quotes, pub, priv, rng=spawn(4, "r", bits)))
        assert results[0] == results[1] == results[2]

    def test_identity_across_pack_grouping(self, keys):
        """One big batch == many small batches (shard invariance)."""
        pub, priv = keys
        gains, quotes = _round(9, 23)
        whole = secure_payment_batch(
            gains, quotes, pub, priv, rng=spawn(10, "whole"))
        pieces = []
        for start in range(0, 23, 5):
            pieces.extend(secure_payment_batch(
                gains[start:start + 5], quotes[start:start + 5],
                pub, priv, rng=spawn(11, "piece", start)))
        assert pieces == whole

    def test_gain_contract_enforced(self, keys):
        pub, priv = keys
        with pytest.raises(ValueError, match="plausible range"):
            secure_payment_batch(
                [11.0], [QuotedPrice(rate=1.0, base=0.0, cap=5.0)],
                pub, priv, rng=spawn(0, "x"))


class TestObfuscationPool:
    def test_pooled_encryption_decrypts_correctly(self, keys):
        pub, priv = keys
        pool = ObfuscationPool(pub, size=4, rng=spawn(0, "pool"))
        for value in (0, 1, 123456789, pub.n - 1):
            assert priv.raw_decrypt(pool.raw_encrypt(value)) == value % pub.n
        assert pool.draws == 4

    def test_draws_are_randomised(self, keys):
        pub, _ = keys
        pool = ObfuscationPool(pub, size=8, rng=spawn(1, "pool"))
        draws = {pool.draw() for _ in range(20)}
        assert len(draws) > 1  # not a constant randomiser


class TestSecureSettlement:
    def test_rebuilds_identical_keys_from_seed(self):
        a = SecureSettlement(seed=42, key_bits=256)
        b = SecureSettlement(seed=42, key_bits=256)
        assert a.public_key.n == b.public_key.n
        assert (a.private_key.p, a.private_key.q) == \
               (b.private_key.p, b.private_key.q)
        gains, quotes = _round(12, 9)
        assert a.settle(gains, quotes) == b.settle(gains, quotes)

    def test_distinct_seeds_distinct_keys(self):
        a = SecureSettlement(seed=1, key_bits=256)
        b = SecureSettlement(seed=2, key_bits=256)
        assert a.public_key.n != b.public_key.n

    def test_settle_matches_serial_reference(self):
        settlement = SecureSettlement(seed=3, key_bits=256)
        gains, quotes = _round(13, 17)
        serial = secure_payment_serial_reference(
            gains, quotes, settlement.public_key, settlement.private_key,
            rng=spawn(14, "serial"))
        assert settlement.settle(gains, quotes) == serial

    def test_settlement_for_memoises_per_process(self):
        a = settlement_for(77, 256)
        assert settlement_for(77, 256) is a
        assert settlement_for(78, 256) is not a

    def test_empty_round(self):
        assert SecureSettlement(seed=0, key_bits=256).settle([], []) == []
