"""Tests for the Paillier implementation (homomorphism properties)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security import generate_keypair, is_probable_prime
from repro.utils import spawn


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(bits=256, rng=0)


class TestPrimality:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 97, 101, 7919):
            assert is_probable_prime(p, rng=0)

    def test_small_composites(self):
        for c in (0, 1, 4, 9, 15, 561, 7917):  # 561 is a Carmichael number
            assert not is_probable_prime(c, rng=0)

    def test_large_known_prime(self):
        assert is_probable_prime(2**127 - 1, rng=0)  # Mersenne prime

    def test_large_known_composite(self):
        assert not is_probable_prime((2**61 - 1) * (2**31 - 1), rng=0)


class TestKeygen:
    def test_key_sizes(self, keypair):
        pub, _ = keypair
        assert pub.n.bit_length() >= 250

    def test_too_small_rejected(self):
        with pytest.raises(ValueError, match=">= 64"):
            generate_keypair(bits=32)

    def test_deterministic_given_rng(self):
        a, _ = generate_keypair(bits=128, rng=5)
        b, _ = generate_keypair(bits=128, rng=5)
        assert a.n == b.n

    def test_seeded_keygen_reproducible(self):
        """``seed=`` pins the full keypair, factors included."""
        pub_a, priv_a = generate_keypair(bits=128, seed=21)
        pub_b, priv_b = generate_keypair(bits=128, seed=21)
        assert pub_a.n == pub_b.n
        assert (priv_a.lam, priv_a.mu, priv_a.p, priv_a.q) == \
               (priv_b.lam, priv_b.mu, priv_b.p, priv_b.q)
        assert priv_a.p * priv_a.q == pub_a.n
        other, _ = generate_keypair(bits=128, seed=22)
        assert other.n != pub_a.n

    def test_seeded_keygen_reproducible_across_processes(self):
        """Regression: sharded secure jobs rebuild identical keys.

        The seeded stream must not depend on process state (hash
        randomisation, import order), so a fresh interpreter must
        derive the same primes.
        """
        import os
        import subprocess
        import sys

        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        script = (
            f"import sys; sys.path.insert(0, {src!r});"
            "from repro.security import generate_keypair;"
            "pub, priv = generate_keypair(bits=128, seed=21);"
            "print(pub.n, priv.p, priv.q)"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        ).stdout.split()
        pub, priv = generate_keypair(bits=128, seed=21)
        assert [int(x) for x in out] == [pub.n, priv.p, priv.q]

    def test_seed_and_rng_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            generate_keypair(bits=128, rng=1, seed=2)


class TestEncryption:
    def test_int_roundtrip(self, keypair):
        pub, priv = keypair
        assert priv.decrypt(pub.encrypt(42, rng=1)) == 42
        assert priv.decrypt(pub.encrypt(-17, rng=2)) == -17

    def test_float_roundtrip(self, keypair):
        pub, priv = keypair
        assert priv.decrypt(pub.encrypt(0.1537, rng=1)) == pytest.approx(0.1537, abs=1e-8)
        assert priv.decrypt(pub.encrypt(-0.02, rng=2)) == pytest.approx(-0.02, abs=1e-8)

    def test_semantic_security_fresh_randomness(self, keypair):
        pub, _ = keypair
        a = pub.encrypt(5, rng=spawn(1, "a"))
        b = pub.encrypt(5, rng=spawn(2, "b"))
        assert a.ciphertext != b.ciphertext

    def test_capacity_guard(self, keypair):
        pub, _ = keypair
        with pytest.raises(ValueError, match="capacity"):
            pub.encrypt(pub.n)

    def test_cross_key_operations_rejected(self, keypair):
        pub, priv = keypair
        other_pub, _ = generate_keypair(bits=128, rng=9)
        with pytest.raises(ValueError, match="different keys"):
            pub.encrypt(1, rng=0) + other_pub.encrypt(1, rng=0)
        with pytest.raises(ValueError, match="match"):
            priv.decrypt(other_pub.encrypt(1, rng=0))


class TestHomomorphism:
    def test_addition(self, keypair):
        pub, priv = keypair
        enc = pub.encrypt(0.25, rng=1) + pub.encrypt(0.5, rng=2)
        assert priv.decrypt(enc) == pytest.approx(0.75, abs=1e-8)

    def test_plaintext_addition(self, keypair):
        pub, priv = keypair
        assert priv.decrypt(pub.encrypt(0.25, rng=1) + 1.0) == pytest.approx(1.25, abs=1e-8)
        assert priv.decrypt(2.0 + pub.encrypt(0.25, rng=1)) == pytest.approx(2.25, abs=1e-8)

    def test_scalar_multiplication(self, keypair):
        pub, priv = keypair
        assert priv.decrypt(pub.encrypt(0.2, rng=1) * 3) == pytest.approx(0.6, abs=1e-7)
        assert priv.decrypt(0.5 * pub.encrypt(0.2, rng=1)) == pytest.approx(0.1, abs=1e-7)

    def test_subtraction(self, keypair):
        pub, priv = keypair
        enc = pub.encrypt(0.7, rng=1) - pub.encrypt(0.2, rng=2)
        assert priv.decrypt(enc) == pytest.approx(0.5, abs=1e-8)
        assert priv.decrypt(1.0 - pub.encrypt(0.2, rng=1)) == pytest.approx(0.8, abs=1e-8)

    def test_ciphertext_product_rejected(self, keypair):
        pub, _ = keypair
        with pytest.raises(ValueError, match="ciphertext-plaintext"):
            pub.encrypt(2, rng=1) * pub.encrypt(3, rng=2)

    @settings(max_examples=20, deadline=None)
    @given(
        a=st.floats(min_value=-5, max_value=5),
        b=st.floats(min_value=-5, max_value=5),
        k=st.integers(min_value=-20, max_value=20),
    )
    def test_affine_identity_property(self, a, b, k):
        pub, priv = generate_keypair(bits=128, rng=3)
        enc = pub.encrypt(a, rng=1) * k + pub.encrypt(b, rng=2)
        assert priv.decrypt(enc) == pytest.approx(a * k + b, abs=1e-6)
