"""Hypothesis property tests for the Paillier layer and slot packing.

Pins the algebra the secure-bargaining stack leans on: fixed-point
encode/decode round-trips, the homomorphisms (ciphertext add ==
plaintext add, ciphertext-scalar mul == plaintext mul), exponent
alignment in ``_align``, CRT decryption pinned to textbook decryption,
and slot pack/unpack isolation at extreme magnitudes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.security.batch import SlotLayout, pack_values, slot_layout, unpack_values
from repro.security.paillier import FLOAT_SCALE, _align, generate_keypair

# One keypair for the module: 128-bit keys keep every Hypothesis
# example fast while the plaintext space (|m| <= n/2 ~ 2^126) still
# dwarfs the magnitudes under test.
PUB, PRIV = generate_keypair(bits=128, seed=1234)

ints = st.integers(min_value=-(2**60), max_value=2**60)
floats = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
small_ints = st.integers(min_value=-(2**40), max_value=2**40)


def _rng():
    return np.random.default_rng(0)


class TestEncodeDecode:
    @given(value=ints)
    @settings(deadline=None)
    def test_int_round_trip(self, value):
        mantissa, exponent = PUB.encode(value)
        assert exponent == 0
        assert PUB.decode(mantissa, exponent) == value

    @given(value=floats)
    @settings(deadline=None)
    def test_float_round_trip_is_fixed_point_quantisation(self, value):
        mantissa, exponent = PUB.encode(value)
        assert exponent == 1
        quantised = int(round(value * FLOAT_SCALE))
        assert PUB.decode(mantissa, exponent) == quantised / float(FLOAT_SCALE)

    @given(value=ints)
    @settings(deadline=None)
    def test_encrypt_decrypt_round_trip(self, value):
        assert PRIV.decrypt(PUB.encrypt(value, rng=_rng())) == value


class TestHomomorphisms:
    @given(a=ints, b=ints)
    @settings(deadline=None)
    def test_ciphertext_add_is_plaintext_add(self, a, b):
        enc = PUB.encrypt(a, rng=_rng()) + PUB.encrypt(b, rng=_rng())
        assert PRIV.decrypt(enc) == a + b

    @given(a=small_ints, k=st.integers(min_value=-(2**20), max_value=2**20))
    @settings(deadline=None)
    def test_scalar_mul_is_plaintext_mul(self, a, k):
        assert PRIV.decrypt(PUB.encrypt(a, rng=_rng()) * k) == a * k

    @given(a=ints, b=ints)
    @settings(deadline=None)
    def test_plaintext_add_matches_ciphertext_add(self, a, b):
        enc = PUB.encrypt(a, rng=_rng()) + b
        assert PRIV.decrypt(enc) == a + b


class TestAlignment:
    @given(a=small_ints, b=st.floats(min_value=-1e4, max_value=1e4,
                                     allow_nan=False, allow_infinity=False))
    @settings(deadline=None)
    def test_align_brings_exponents_together(self, a, b):
        enc_a = PUB.encrypt(a, rng=_rng())        # exponent 0
        enc_b = PUB.encrypt(float(b), rng=_rng())  # exponent 1
        left, right = _align(enc_a, enc_b)
        assert left.exponent == right.exponent == 1
        # Alignment preserves value: the sum decodes to a + quantised(b).
        m_b = int(round(float(b) * FLOAT_SCALE))
        expected = (a * FLOAT_SCALE + m_b) / float(FLOAT_SCALE)
        assert PRIV.decrypt(enc_a + enc_b) == expected

    @given(a=small_ints, b=small_ints)
    @settings(deadline=None)
    def test_align_same_exponent_is_identity(self, a, b):
        enc_a, enc_b = PUB.encrypt(a, rng=_rng()), PUB.encrypt(b, rng=_rng())
        left, right = _align(enc_a, enc_b)
        assert left is enc_a and right is enc_b


class TestCrtDecryption:
    @given(value=ints)
    @settings(deadline=None)
    def test_crt_pinned_to_raw_decrypt(self, value):
        cipher = PUB.encrypt(value, rng=_rng()).ciphertext
        assert PRIV.raw_decrypt_crt(cipher) == PRIV.raw_decrypt(cipher)

    def test_keys_without_factors_fall_back(self):
        from repro.security.paillier import PaillierPrivateKey

        legacy = PaillierPrivateKey(PUB, PRIV.lam, PRIV.mu)  # p == q == 0
        cipher = PUB.encrypt(424242, rng=_rng()).ciphertext
        assert legacy.raw_decrypt_crt(cipher) == PRIV.raw_decrypt(cipher)


# Slot values anywhere in the signed range of a 64-bit-wide slot,
# including the extreme magnitudes +/-(2^63 - 1).
slot_values = st.lists(
    st.integers(min_value=-(2**63) + 1, max_value=2**63 - 1),
    min_size=0, max_size=16,
) | st.lists(
    st.sampled_from([-(2**63) + 1, 2**63 - 1, 0, 1, -1]),
    min_size=1, max_size=16,
)


class TestSlotPacking:
    @given(values=slot_values)
    @settings(deadline=None)
    def test_pack_unpack_round_trip_no_bleed(self, values):
        layout = SlotLayout(width=64, slots=16)
        packed = pack_values(values, layout)
        assert unpack_values(packed, len(values), layout) == values

    @given(values=slot_values, flip=st.integers(min_value=0, max_value=15))
    @settings(deadline=None)
    def test_slot_isolation_under_perturbation(self, values, flip):
        """Changing one slot never changes its neighbours."""
        if not values:
            return
        layout = SlotLayout(width=64, slots=16)
        flip = flip % len(values)
        perturbed = list(values)
        perturbed[flip] = -perturbed[flip] if perturbed[flip] else 1
        before = unpack_values(pack_values(values, layout), len(values), layout)
        after = unpack_values(pack_values(perturbed, layout), len(values), layout)
        for j, (x, y) in enumerate(zip(before, after)):
            if j != flip:
                assert x == y

    @given(max_abs=st.integers(min_value=0, max_value=2**100))
    @settings(deadline=None)
    def test_layout_bounds(self, max_abs):
        layout = slot_layout(PUB, max_abs)
        assert layout.offset > max_abs          # signed range covers the bound
        assert layout.slots >= 1
        # The packed total always stays below the signed-decode boundary.
        assert layout.slots * layout.width <= PUB.n.bit_length() - 2
