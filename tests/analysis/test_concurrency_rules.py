"""Concurrency rules: lock-graph construction, cycle detection, and
mixed loop/thread mutation — against inline sources and the on-disk
fixture packages."""

import os

from repro.analysis.core import ModuleContext, lint_source
from repro.analysis.concurrency import build_lock_graph

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture_source(name):
    with open(os.path.join(FIXTURES, name), encoding="utf-8") as handle:
        return handle.read()


def rules(src, *, path="src/repro/service/module.py", select=None):
    return [f.rule for f in lint_source(src, path=path, select=select)]


class TestLockGraph:
    def test_nested_with_records_edge(self):
        src = (
            "class C:\n"
            "    def f(self):\n"
            "        with self._a_lock:\n"
            "            with self._b_lock:\n"
            "                pass\n"
        )
        ctx = ModuleContext.from_source(src, "m.py")
        assert ("C._a_lock", "C._b_lock") in build_lock_graph(ctx)

    def test_call_under_lock_reaches_callee_locks(self):
        src = (
            "class C:\n"
            "    def f(self):\n"
            "        with self._a_lock:\n"
            "            self.g()\n"
            "    def g(self):\n"
            "        with self._b_lock:\n"
            "            pass\n"
        )
        ctx = ModuleContext.from_source(src, "m.py")
        assert ("C._a_lock", "C._b_lock") in build_lock_graph(ctx)

    def test_module_level_lock_factory_tracked(self):
        src = (
            "import threading\n"
            "_guard = threading.Lock()\n"
            "def f():\n"
            "    with _guard:\n"
            "        pass\n"
        )
        ctx = ModuleContext.from_source(src, "m.py")
        graph = build_lock_graph(ctx)
        # single acquisition, no nesting: node exists only via edges, so
        # the graph must simply have no edges at all here
        assert graph == {}

    def test_nested_def_does_not_inherit_held_locks(self):
        # The thunk runs later on an executor thread — acquiring the
        # other lock inside it is NOT nested acquisition.
        src = (
            "class C:\n"
            "    def f(self):\n"
            "        with self._a_lock:\n"
            "            def thunk():\n"
            "                with self._b_lock:\n"
            "                    pass\n"
            "            return thunk\n"
        )
        ctx = ModuleContext.from_source(src, "m.py")
        assert ("C._a_lock", "C._b_lock") not in build_lock_graph(ctx)


class TestCON001LockOrderCycle:
    def test_ab_ba_cycle_reported(self):
        findings = lint_source(fixture_source("lock_cycle.py"), path="fx/lock_cycle.py")
        con = [f for f in findings if f.rule == "CON001"]
        assert len(con) == 1
        assert "Ledger._accounts_lock" in con[0].message
        assert "Ledger._journal_lock" in con[0].message
        assert "deadlock" in con[0].message

    def test_call_chain_cycle_reported(self):
        findings = lint_source(
            fixture_source("call_chain_cycle.py"), path="fx/call_chain_cycle.py"
        )
        con = [f for f in findings if f.rule == "CON001"]
        assert len(con) == 1
        assert "Spooler._queue_lock" in con[0].message
        assert "Spooler._sink_lock" in con[0].message

    def test_consistent_order_is_clean(self):
        findings = lint_source(
            fixture_source("consistent_order.py"), path="fx/consistent_order.py"
        )
        assert [f for f in findings if f.rule == "CON001"] == []

    def test_self_reacquisition_reported(self):
        src = (
            "class C:\n"
            "    def f(self):\n"
            "        with self._lock:\n"
            "            self.g()\n"
            "    def g(self):\n"
            "        with self._lock:\n"
            "            pass\n"
        )
        findings = lint_source(src, select=["CON001"])
        assert len(findings) == 1
        assert "re-acquired while already held" in findings[0].message

    def test_cycle_report_is_deterministic(self):
        src = fixture_source("lock_cycle.py")
        first = lint_source(src, path="fx/lock_cycle.py")
        second = lint_source(src, path="fx/lock_cycle.py")
        assert first == second


ASYNC_MIXED = """\
import asyncio
import threading


class Server:
    def __init__(self):
        self._lock = threading.Lock()
        self._busy = 0

    async def handle(self):
        self._busy += 1

    def snapshot(self):
        self._busy = 0
"""


class TestCON002MixedContextMutation:
    def test_unlocked_cross_context_write_flagged(self):
        findings = lint_source(ASYNC_MIXED, select=["CON002"])
        assert len(findings) == 1
        assert "self._busy" in findings[0].message
        assert "event loop" in findings[0].message

    def test_locked_on_both_sides_passes(self):
        src = (
            "import threading\n"
            "class Server:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._busy = 0\n"
            "    async def handle(self):\n"
            "        with self._lock:\n"
            "            self._busy += 1\n"
            "    def snapshot(self):\n"
            "        with self._lock:\n"
            "            self._busy = 0\n"
        )
        assert lint_source(src, select=["CON002"]) == []

    def test_single_context_writes_pass(self):
        src = (
            "class Server:\n"
            "    def __init__(self):\n"
            "        self._busy = 0\n"
            "    async def handle(self):\n"
            "        self._busy += 1\n"
            "    def snapshot(self):\n"
            "        return self._busy\n"
        )
        assert lint_source(src, select=["CON002"]) == []

    def test_constructor_writes_exempt(self):
        src = (
            "class Server:\n"
            "    def __init__(self):\n"
            "        self._busy = 0\n"
            "    async def handle(self):\n"
            "        self._busy += 1\n"
        )
        assert lint_source(src, select=["CON002"]) == []

    def test_nested_thunk_classified_by_own_kind(self):
        # An async method shipping a plain thunk to an executor: the
        # thunk's write happens on a pool thread -> cross-context.
        src = (
            "class Server:\n"
            "    async def handle(self):\n"
            "        self._busy = 1\n"
            "        def work():\n"
            "            self._busy = 2\n"
            "        return work\n"
        )
        findings = lint_source(src, select=["CON002"])
        assert len(findings) == 1


class TestRealModulesStayClean:
    def test_service_and_client_lock_discipline_holds(self):
        # The modules the issue names: their lock graphs must be acyclic
        # and their loop/thread state properly confined, post-fixes.
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        for rel in (
            "src/repro/service/manager.py",
            "src/repro/service/api.py",
            "src/repro/service/async_server.py",
            "src/repro/client/http.py",
            "src/repro/security/batch.py",
            "src/repro/fleet/agent.py",
            "src/repro/fleet/executor.py",
            "src/repro/fleet/manager.py",
            "src/repro/jobs/remote.py",
        ):
            path = os.path.join(root, rel)
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
            findings = lint_source(source, path=rel, select=["CON001", "CON002"])
            assert findings == [], f"{rel}: {[f.render() for f in findings]}"
