"""Driver contract: discovery, baselines, rendering, exit codes."""

import io
import json
import os

import pytest

from repro.analysis.driver import (
    Baseline,
    DEFAULT_PATHS,
    LintInternalError,
    discover_files,
    lint_paths,
    main,
)

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def run_cli(argv):
    out, err = io.StringIO(), io.StringIO()
    code = main(argv, stdout=out, stderr=err)
    return code, out.getvalue(), err.getvalue()


class TestDiscovery:
    def test_discovers_sorted_python_files(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "c.py").write_text("x = 1\n")
        files = discover_files(["."], root=str(tmp_path))
        assert [os.path.basename(f) for f in files] == ["a.py", "b.py", "c.py"]

    def test_excluded_dirs_skipped(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
        (tmp_path / "tests").mkdir()
        (tmp_path / "tests" / "fixture.py").write_text("import random\nrandom.random()\n")
        (tmp_path / "ok.py").write_text("x = 1\n")
        files = discover_files(["."], root=str(tmp_path))
        assert [os.path.basename(f) for f in files] == ["ok.py"]

    def test_missing_path_is_internal_error(self, tmp_path):
        with pytest.raises(LintInternalError):
            discover_files(["no-such-dir"], root=str(tmp_path))


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path):
        (tmp_path / "clean.py").write_text("x = 1\n")
        code, out, err = run_cli([str(tmp_path)])
        assert code == 0
        assert "0 finding(s)" in out

    def test_findings_exit_one(self, tmp_path):
        (tmp_path / "dirty.py").write_text("import random\nrandom.random()\n")
        code, out, err = run_cli([str(tmp_path)])
        assert code == 1
        assert "DET001" in out

    def test_missing_path_exits_two(self, tmp_path):
        code, out, err = run_cli([str(tmp_path / "absent")])
        assert code == 2
        assert "error" in err

    def test_unknown_rule_exits_two(self, tmp_path):
        (tmp_path / "clean.py").write_text("x = 1\n")
        code, out, err = run_cli([str(tmp_path), "--select", "NOPE999"])
        assert code == 2

    def test_unreadable_baseline_exits_two(self, tmp_path):
        (tmp_path / "clean.py").write_text("x = 1\n")
        code, out, err = run_cli(
            [str(tmp_path), "--baseline", str(tmp_path / "missing.json")]
        )
        assert code == 2

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        (tmp_path / "broken.py").write_text("def nope(:\n")
        code, out, err = run_cli([str(tmp_path)])
        assert code == 1
        assert "LNT001" in out


class TestBaseline:
    def test_write_then_suppress_roundtrip(self, tmp_path):
        (tmp_path / "dirty.py").write_text("import random\nrandom.random()\n")
        baseline = tmp_path / "baseline.json"
        code, out, _ = run_cli([str(tmp_path), "--write-baseline", str(baseline)])
        assert code == 0
        assert "wrote 1 finding(s)" in out

        code, out, _ = run_cli([str(tmp_path), "--baseline", str(baseline)])
        assert code == 0
        assert "1 baselined" in out

    def test_baseline_survives_line_shifts(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text("import random\nrandom.random()\n")
        baseline = tmp_path / "baseline.json"
        run_cli([str(tmp_path), "--write-baseline", str(baseline)])
        # unrelated edit pushes the finding three lines down
        target.write_text("import random\n\n\n\nrandom.random()\n")
        code, _, _ = run_cli([str(tmp_path), "--baseline", str(baseline)])
        assert code == 0

    def test_new_findings_not_covered_by_baseline(self, tmp_path):
        (tmp_path / "dirty.py").write_text("import random\nrandom.random()\n")
        baseline = tmp_path / "baseline.json"
        run_cli([str(tmp_path), "--write-baseline", str(baseline)])
        (tmp_path / "worse.py").write_text("import random\nrandom.shuffle([1])\n")
        code, out, _ = run_cli([str(tmp_path), "--baseline", str(baseline)])
        assert code == 1
        assert "worse.py" in out

    def test_invalid_baseline_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"version": 7}))
        with pytest.raises(LintInternalError, match="version-1"):
            Baseline.load(str(bad))

    def test_render_is_stable(self, tmp_path):
        (tmp_path / "dirty.py").write_text("import random\nrandom.random()\n")
        result = lint_paths(["."], root=str(tmp_path))
        assert Baseline.render(result.findings) == Baseline.render(result.findings)


class TestOutputStability:
    def test_json_output_is_byte_identical_across_runs(self, tmp_path):
        (tmp_path / "dirty.py").write_text(
            "import random, time\nrandom.random()\nt = time.time()\n"
        )
        first = run_cli([str(tmp_path), "--format", "json"])
        second = run_cli([str(tmp_path), "--format", "json"])
        assert first == second
        payload = json.loads(first[1])
        assert payload["version"] == 1
        assert payload["count"] == len(payload["findings"]) == 1

    def test_findings_sorted_by_position(self, tmp_path):
        (tmp_path / "b.py").write_text("import random\nrandom.random()\n")
        (tmp_path / "a.py").write_text("import random\nrandom.random()\n")
        _, out, _ = run_cli([str(tmp_path), "--format", "json"])
        paths = [f["path"] for f in json.loads(out)["findings"]]
        assert paths == sorted(paths)

    def test_list_rules_names_every_rule(self):
        code, out, _ = run_cli(["--list-rules"])
        assert code == 0
        for rule_id in ("DET001", "DET002", "DET003", "DET004", "DET005",
                        "CON001", "CON002"):
            assert rule_id in out


class TestFixturePackage:
    def test_lock_cycle_fixture_is_caught_on_disk(self):
        code, out, _ = run_cli([FIXTURES, "--select", "CON001"])
        assert code == 1
        assert "lock_cycle.py" in out
        assert "call_chain_cycle.py" in out
        assert "consistent_order.py" not in out

    def test_fixtures_excluded_from_default_surface(self):
        # The default surface never descends into tests/, so the
        # deliberate fixtures cannot fail a repo-wide run.
        assert "tests" not in DEFAULT_PATHS
        files = discover_files(DEFAULT_PATHS, root=REPO_ROOT)
        assert not any("tests" + os.sep in f for f in files)


class TestWholeRepoClean:
    def test_default_surface_lints_clean_with_no_baseline(self):
        # The shipped tree carries zero waivers: every true positive is
        # fixed, every deliberate exception has an inline reason.
        code, out, err = run_cli(["--root", REPO_ROOT, "--format", "json"])
        payload = json.loads(out)
        assert payload["findings"] == [], out
        assert code == 0
        assert payload["files_checked"] > 100
