"""The mypy strict gate, run through the same config CI uses.

Skips cleanly when mypy is not installed (it is a CI-only dependency;
see ``requirements-ci.txt``) so the tier-1 suite stays runnable from a
bare numpy/pytest environment.
"""

import os
import subprocess
import sys

import pytest

pytest.importorskip("mypy")

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))


def test_strict_modules_type_check():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"mypy strict gate failed:\n{proc.stdout}\n{proc.stderr}"
    )
