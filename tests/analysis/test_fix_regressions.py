"""Regression pins for the lint-driven fixes.

The lint rules surfaced true positives in ``jobs/store.py`` (raw
``json.dumps`` + wall-clock rows) and ``simulate/population.py``
(``PopulationSpec`` outside the spec contract).  The fixes must be
behaviour-preserving where it counts: every digest the platform has
ever handed out stays byte-identical.  These tests pin the digests
computed on the pre-fix tree.
"""

import math

import pytest

from repro.jobs.executor import ShardedExecutor
from repro.jobs.store import JobStore
from repro.service.specs import SimulationSpec
from repro.simulate import SessionPool, build_report, sample_population
from repro.simulate.population import PopulationSpec
from repro.utils.canonical import canonical_json, stable_json

#: Digest of SimulationSpec(sessions=120, seed=0, batch_size=32),
#: computed before the store/population fixes.
SPEC_DIGEST = "16774669e7e7d6c2"

#: Report digest of that spec's population, single-process, computed
#: before the fixes.  The sharded path must merge to the same value.
REPORT_DIGEST = "467f434c23b3103c"


@pytest.fixture(scope="module")
def spec():
    return SimulationSpec(sessions=120, seed=0, batch_size=32)


class TestDigestPins:
    def test_spec_digest_unchanged(self, spec):
        assert spec.digest() == SPEC_DIGEST

    def test_single_process_report_digest_unchanged(self, spec):
        population = sample_population(spec.population_spec(), 120, seed=0)
        result = SessionPool(population, batch_size=32).run()
        assert build_report(population, result).digest() == REPORT_DIGEST

    def test_sharded_store_path_digest_unchanged(self, spec, tmp_path):
        # Exercises the full fixed surface: canonical_json spec rows,
        # stable_json chunk results and report, _wall_now timestamps.
        store = JobStore(str(tmp_path / "jobs.sqlite3"))
        executor = ShardedExecutor(store, shards=2)
        record = executor.submit(spec, chunks=4)
        record = executor.run(record.job_id)
        assert record.status == "done"
        assert record.digest == REPORT_DIGEST
        # and the durable row round-trips the merged report
        reread = store.get(record.job_id)
        assert reread.digest == REPORT_DIGEST
        assert reread.report == record.report


class TestStoreSerialisation:
    def test_spec_rows_are_canonical(self, tmp_path):
        # Key order in the caller's dict must not leak into the stored
        # row (or the job id): permuted spec dicts are the same job.
        store = JobStore(str(tmp_path / "jobs.sqlite3"))
        a = {"sessions": 10, "seed": 0}
        b = {"seed": 0, "sessions": 10}
        rec_a = store.submit("simulation", a, [(0, 10)])
        rec_b = store.submit("simulation", b, [(0, 10)])
        assert rec_a.job_id == rec_b.job_id
        with store._connect() as conn:
            (raw,) = conn.execute(
                "SELECT spec FROM jobs WHERE job_id = ?", (rec_a.job_id,)
            ).fetchone()
        assert raw == canonical_json(a)

    def test_nan_results_still_round_trip(self, tmp_path):
        # The documented store contract: failed sessions' delta_g may be
        # NaN and must survive the write/read cycle exactly.
        store = JobStore(str(tmp_path / "jobs.sqlite3"))
        record = store.submit("simulation", {"sessions": 1}, [(0, 1)])
        store.record_chunk(record.job_id, 0, {"delta_g": float("nan"), "n": 1})
        results = store.chunk_results(record.job_id)
        assert math.isnan(results[0]["delta_g"])
        assert results[0]["n"] == 1


class TestStableJson:
    def test_sorted_and_compact(self):
        assert stable_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_nan_round_trips(self):
        import json

        decoded = json.loads(stable_json({"x": float("nan"), "y": 1.5}))
        assert math.isnan(decoded["x"]) and decoded["y"] == 1.5

    def test_matches_canonical_on_finite_payloads(self):
        payload = {"z": [1, 2.5, "s"], "a": {"nested": True}}
        assert stable_json(payload) == canonical_json(payload)


class TestPopulationSpecContract:
    def test_round_trip(self):
        spec = PopulationSpec(preset="titanic", n_features=8,
                              cost_mix=(("linear", 0.01, 1.0),))
        clone = PopulationSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.digest() == spec.digest()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown PopulationSpec keys"):
            PopulationSpec.from_dict({"bogus": 1})

    def test_digest_is_content_addressed(self):
        assert PopulationSpec().digest() == PopulationSpec().digest()
        assert PopulationSpec().digest() != PopulationSpec(n_features=13).digest()

    def test_dict_form_is_json_native(self):
        # canonical_json must accept it directly (no tuples, no NaN)
        canonical_json(PopulationSpec().to_dict())
