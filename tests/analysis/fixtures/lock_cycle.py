"""A deliberate AB/BA lock-order cycle (CON001 positive fixture).

``transfer`` acquires accounts -> journal; ``audit`` acquires
journal -> accounts.  Two threads entering from different ends
deadlock; the static lock graph has the cycle
``Ledger._accounts_lock -> Ledger._journal_lock -> Ledger._accounts_lock``.
"""

import threading


class Ledger:
    def __init__(self) -> None:
        self._accounts_lock = threading.Lock()
        self._journal_lock = threading.Lock()
        self.balance = 0
        self.journal: list[str] = []

    def transfer(self, amount: int) -> None:
        with self._accounts_lock:
            self.balance += amount
            with self._journal_lock:
                self.journal.append(f"transfer {amount}")

    def audit(self) -> int:
        with self._journal_lock:
            entries = len(self.journal)
            with self._accounts_lock:
                return self.balance + entries
