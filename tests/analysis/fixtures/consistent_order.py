"""Two locks always nested the same way (CON001 negative fixture).

Every path acquires ``_accounts_lock`` before ``_journal_lock`` — one
global acquisition order, no cycle, nothing to report.
"""

import threading


class OrderedLedger:
    def __init__(self) -> None:
        self._accounts_lock = threading.Lock()
        self._journal_lock = threading.Lock()
        self.balance = 0
        self.journal: list[str] = []

    def transfer(self, amount: int) -> None:
        with self._accounts_lock:
            self.balance += amount
            with self._journal_lock:
                self.journal.append(f"transfer {amount}")

    def audit(self) -> int:
        with self._accounts_lock:
            with self._journal_lock:
                return self.balance + len(self.journal)
