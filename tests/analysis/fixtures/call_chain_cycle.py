"""A lock cycle hidden behind a same-class call (CON001 positive fixture).

No single method nests the locks both ways: ``push`` holds the queue
lock and *calls* ``_flush``, which acquires the sink lock; ``drain``
holds the sink lock and calls ``_requeue``, which acquires the queue
lock.  Only the transitive closure over same-scope calls sees the
``queue -> sink -> queue`` cycle.
"""

import threading


class Spooler:
    def __init__(self) -> None:
        self._queue_lock = threading.Lock()
        self._sink_lock = threading.Lock()
        self.pending: list[str] = []
        self.sunk: list[str] = []

    def push(self, item: str) -> None:
        with self._queue_lock:
            self.pending.append(item)
            self._flush()

    def _flush(self) -> None:
        with self._sink_lock:
            self.sunk.extend(self.pending)

    def drain(self) -> None:
        with self._sink_lock:
            items = list(self.sunk)
            self._requeue(items)

    def _requeue(self, items: list[str]) -> None:
        with self._queue_lock:
            self.pending.extend(items)
