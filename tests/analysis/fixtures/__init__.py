"""Synthetic lint-target packages.

These modules are *inputs to the linter*, never imported by the code
under test: each one deliberately violates (or deliberately satisfies)
one rule, so the analysis suite can assert findings against real files
on disk — the same discovery path CI runs — rather than only against
inline source strings.  ``tests/`` is excluded from the default lint
surface precisely so these fixtures never pollute a repo-wide run.
"""
