"""Lint core: findings, pragmas, import resolution, rule registry."""

import pytest

from repro.analysis.core import (
    Finding,
    ModuleContext,
    lint_source,
    parse_pragmas,
    resolve_selection,
    rule_ids,
)


class TestFinding:
    def test_ordering_is_positional(self):
        a = Finding("a.py", 1, 0, "DET001", "m")
        b = Finding("a.py", 2, 0, "DET001", "m")
        c = Finding("b.py", 1, 0, "DET001", "m")
        assert sorted([c, b, a]) == [a, b, c]

    def test_fingerprint_ignores_position(self):
        a = Finding("a.py", 1, 0, "DET001", "m")
        b = Finding("a.py", 99, 7, "DET001", "m")
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_distinguishes_rule_and_message(self):
        a = Finding("a.py", 1, 0, "DET001", "m")
        assert a.fingerprint() != Finding("a.py", 1, 0, "DET002", "m").fingerprint()
        assert a.fingerprint() != Finding("a.py", 1, 0, "DET001", "n").fingerprint()

    def test_render_is_path_line_col_rule(self):
        f = Finding("src/x.py", 3, 4, "DET001", "boom")
        assert f.render() == "src/x.py:3:4: DET001 boom"


class TestPragmas:
    def test_parse_rules_and_reason(self):
        pragmas = parse_pragmas("x = 1  # lint: allow[DET001, CON002] known safe\n")
        assert len(pragmas) == 1
        assert pragmas[0].rules == frozenset({"DET001", "CON002"})
        assert pragmas[0].reason == "known safe"
        assert pragmas[0].line == 1

    def test_reasonless_pragma_has_empty_reason(self):
        (pragma,) = parse_pragmas("x = 1  # lint: allow[DET001]\n")
        assert pragma.reason == ""

    def test_non_pragma_comments_ignored(self):
        assert parse_pragmas("x = 1  # plain comment\n") == []

    def test_pragma_with_reason_suppresses_same_line(self):
        src = (
            "import random\n"
            "x = random.random()  # lint: allow[DET001] deliberate jitter\n"
        )
        assert lint_source(src) == []

    def test_reasonless_pragma_suppresses_nothing_and_reports(self):
        src = "import random\nx = random.random()  # lint: allow[DET001]\n"
        findings = lint_source(src)
        rules = [f.rule for f in findings]
        assert "DET001" in rules and "LNT002" in rules

    def test_pragma_for_other_rule_does_not_suppress(self):
        src = "import random\nx = random.random()  # lint: allow[DET002] wrong id\n"
        assert [f.rule for f in lint_source(src)] == ["DET001"]


class TestImportResolution:
    def test_alias_resolves(self):
        ctx = ModuleContext.from_source(
            "import numpy as np\nnp.random.shuffle([1])\n", "m.py"
        )
        call = ctx.tree.body[1].value
        assert ctx.call_name(call) == "numpy.random.shuffle"

    def test_from_import_resolves(self):
        ctx = ModuleContext.from_source(
            "from numpy import random as nr\nnr.shuffle([1])\n", "m.py"
        )
        call = ctx.tree.body[1].value
        assert ctx.call_name(call) == "numpy.random.shuffle"

    def test_from_import_function_resolves(self):
        ctx = ModuleContext.from_source(
            "from random import shuffle\nshuffle([1])\n", "m.py"
        )
        call = ctx.tree.body[1].value
        assert ctx.call_name(call) == "random.shuffle"

    def test_unresolvable_shapes_are_none(self):
        ctx = ModuleContext.from_source("x[0].method()\n", "m.py")
        call = ctx.tree.body[0].value
        assert ctx.call_name(call) is None


class TestModuleContext:
    @pytest.mark.parametrize("path,expected", [
        ("src/repro/jobs/store.py", True),
        ("repro/market/engine.py", True),
        ("src/repro/simulate/report.py", True),
        ("src/repro/security/batch.py", True),
        ("src/repro/service/manager.py", False),
        ("src/repro/client/http.py", False),
    ])
    def test_digest_bearing_classification(self, path, expected):
        ctx = ModuleContext.from_source("x = 1\n", path)
        assert ctx.digest_bearing is expected

    def test_rng_exempt_only_for_rng_module(self):
        assert ModuleContext.from_source("", "src/repro/utils/rng.py").rng_exempt
        assert not ModuleContext.from_source("", "src/repro/utils/log.py").rng_exempt


class TestRegistry:
    def test_all_rules_registered(self):
        ids = rule_ids()
        for expected in ("DET001", "DET002", "DET003", "DET004", "DET005",
                         "CON001", "CON002"):
            assert expected in ids

    def test_selection_by_id_and_name(self):
        assert resolve_selection(["DET001"]) == ("DET001",)
        assert resolve_selection(["unseeded-rng"]) == ("DET001",)
        assert resolve_selection(["det001"]) == ("DET001",)

    def test_selection_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            resolve_selection(["NOPE999"])


class TestSyntaxError:
    def test_unparseable_source_is_lnt001(self):
        findings = lint_source("def broken(:\n", path="bad.py")
        assert len(findings) == 1
        assert findings[0].rule == "LNT001"
        assert "does not parse" in findings[0].message
