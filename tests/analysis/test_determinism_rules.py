"""Determinism rules: one positive and one negative case per rule (and
then some) — every case runs the real rule over real parsed source."""

from repro.analysis.core import lint_source

DIGEST_PATH = "src/repro/jobs/module.py"       # digest-bearing
PLAIN_PATH = "src/repro/client/module.py"      # not digest-bearing


def rules(src, *, path=PLAIN_PATH, select=None):
    return [f.rule for f in lint_source(src, path=path, select=select)]


class TestDET001UnseededRNG:
    def test_numpy_global_draw_flagged(self):
        assert rules("import numpy as np\nnp.random.shuffle([1])\n") == ["DET001"]

    def test_argless_default_rng_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        findings = lint_source(src)
        assert [f.rule for f in findings] == ["DET001"]
        assert "OS entropy" in findings[0].message

    def test_stdlib_random_flagged(self):
        assert rules("import random\nx = random.random()\n") == ["DET001"]

    def test_from_import_alias_cannot_hide_it(self):
        assert rules("from random import shuffle\nshuffle([1])\n") == ["DET001"]

    def test_argless_random_instance_flagged(self):
        assert rules("import random\nr = random.Random()\n") == ["DET001"]

    def test_seeded_constructors_pass(self):
        assert rules(
            "import numpy as np\nimport random\n"
            "rng = np.random.default_rng(0)\n"
            "r = random.Random(42)\n"
        ) == []

    def test_generator_method_draws_pass(self):
        # rng.shuffle() on a spawned generator resolves to no banned name.
        assert rules(
            "from repro.utils.rng import spawn\n"
            "rng = spawn(0, 'x')\nrng.shuffle([1])\n"
        ) == []

    def test_utils_rng_module_is_exempt(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules(src, path="src/repro/utils/rng.py") == []


class TestDET002WallClock:
    def test_time_time_in_digest_module_flagged(self):
        src = "import time\nt = time.time()\n"
        assert rules(src, path=DIGEST_PATH) == ["DET002"]

    def test_datetime_now_in_digest_module_flagged(self):
        src = "from datetime import datetime\nt = datetime.now()\n"
        assert rules(src, path=DIGEST_PATH) == ["DET002"]

    def test_same_source_outside_digest_modules_passes(self):
        assert rules("import time\nt = time.time()\n", path=PLAIN_PATH) == []

    def test_monotonic_clocks_pass_everywhere(self):
        src = "import time\na = time.perf_counter()\nb = time.monotonic()\n"
        assert rules(src, path=DIGEST_PATH) == []

    def test_naked_wall_clock_in_instrumented_module_fires(self):
        # A module that imports the obs layer inherits the ban: the
        # only sanctioned wall-clock read is repro.obs.clock.wall_now.
        src = (
            "import time\n"
            "from repro.obs import REGISTRY\n"
            "t = time.time()\n"
        )
        findings = lint_source(src, path=PLAIN_PATH)
        assert [f.rule for f in findings] == ["DET002"]
        assert "instrumented" in findings[0].message
        assert "repro.obs.clock.wall_now" in findings[0].message

    def test_obs_package_modules_are_instrumented(self):
        src = "import time\nt = time.time()\n"
        assert rules(src, path="src/repro/obs/trace.py") == ["DET002"]

    def test_obs_clock_is_the_sole_wall_clock_exemption(self):
        src = "import time\n\ndef wall_now():\n    return time.time()\n"
        assert rules(src, path="src/repro/obs/clock.py") == []

    def test_importing_obs_submodule_also_instruments(self):
        src = (
            "from repro.obs.metrics import REGISTRY\n"
            "from datetime import datetime\n"
            "t = datetime.now()\n"
        )
        assert rules(src, path=PLAIN_PATH) == ["DET002"]


class TestDET003RawDigestSerialisation:
    def test_raw_dumps_in_digest_module_flagged(self):
        src = "import json\ns = json.dumps({'a': 1})\n"
        assert rules(src, path=DIGEST_PATH) == ["DET003"]

    def test_raw_hashlib_in_digest_module_flagged(self):
        src = "import hashlib\nh = hashlib.sha256(b'x')\n"
        assert rules(src, path=DIGEST_PATH) == ["DET003"]

    def test_hash_of_raw_json_flagged_anywhere(self):
        src = (
            "import hashlib, json\n"
            "h = hashlib.sha256(json.dumps({'a': 1}).encode())\n"
        )
        findings = lint_source(src, path=PLAIN_PATH)
        assert [f.rule for f in findings] == ["DET003"]
        assert "insertion order" in findings[0].message

    def test_raw_dumps_outside_digest_modules_passes(self):
        assert rules("import json\ns = json.dumps({'a': 1})\n", path=PLAIN_PATH) == []

    def test_canonical_module_is_exempt(self):
        src = "import hashlib, json\nh = hashlib.sha256(json.dumps({}).encode())\n"
        assert rules(src, path="src/repro/utils/canonical.py") == []

    def test_canonical_helpers_pass(self):
        src = (
            "from repro.utils.canonical import canonical_json, content_digest\n"
            "s = canonical_json({'a': 1})\nd = content_digest({'a': 1})\n"
        )
        assert rules(src, path=DIGEST_PATH) == []


class TestDET004UnsortedSetIteration:
    def test_for_over_set_literal_flagged(self):
        assert rules("for x in {1, 2}:\n    pass\n", path=DIGEST_PATH) == ["DET004"]

    def test_comprehension_over_set_call_flagged(self):
        src = "items = [1]\nout = [v for v in set(items)]\n"
        assert rules(src, path=DIGEST_PATH) == ["DET004"]

    def test_list_materialisation_flagged(self):
        assert rules("xs = list({1, 2})\n", path=DIGEST_PATH) == ["DET004"]

    def test_join_over_set_flagged(self):
        assert rules("s = ','.join({'a', 'b'})\n", path=DIGEST_PATH) == ["DET004"]

    def test_set_arithmetic_keeps_setness(self):
        src = "for x in set([1]) | set([2]):\n    pass\n"
        assert rules(src, path=DIGEST_PATH) == ["DET004"]

    def test_sorted_set_passes(self):
        src = "for x in sorted({1, 2}):\n    pass\nxs = list(sorted(set([1])))\n"
        assert rules(src, path=DIGEST_PATH) == []

    def test_dict_iteration_passes(self):
        src = "d = {'a': 1}\nfor k in d:\n    pass\nxs = list(d.values())\n"
        assert rules(src, path=DIGEST_PATH) == []

    def test_order_free_reducers_pass(self):
        src = "n = len({1, 2})\nm = max({1, 2})\ns = sum({1, 2})\n"
        assert rules(src, path=DIGEST_PATH) == []

    def test_outside_digest_modules_passes(self):
        assert rules("for x in {1, 2}:\n    pass\n", path=PLAIN_PATH) == []


GOOD_SPEC = """\
from dataclasses import dataclass
from repro.utils.canonical import content_digest


@dataclass(frozen=True)
class GoodSpec:
    n: int = 1

    def to_dict(self):
        return {"n": self.n}

    @classmethod
    def from_dict(cls, payload):
        return cls(**payload)

    def digest(self):
        return content_digest(self.to_dict())
"""


class TestDET005SpecShape:
    def test_conforming_spec_passes(self):
        assert rules(GOOD_SPEC) == []

    def test_mutable_spec_flagged(self):
        src = GOOD_SPEC.replace("@dataclass(frozen=True)", "@dataclass")
        findings = lint_source(src)
        assert [f.rule for f in findings] == ["DET005"]
        assert "frozen=True" in findings[0].message

    def test_missing_methods_flagged(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class BareSpec:\n    n: int = 1\n"
        )
        findings = lint_source(src)
        assert [f.rule for f in findings] == ["DET005"]
        assert "digest" in findings[0].message
        assert "from_dict" in findings[0].message

    def test_private_and_non_spec_classes_skipped(self):
        src = (
            "class _ScratchSpec:\n    pass\n"
            "class Inspector:\n    pass\n"
        )
        assert rules(src) == []


class TestSelection:
    def test_select_restricts_rules(self):
        src = "import random, time\nx = random.random()\nt = time.time()\n"
        assert rules(src, path=DIGEST_PATH, select=["DET002"]) == ["DET002"]
