"""Tests for input-validation helpers."""

import numpy as np
import pytest

from repro.utils import (
    check_finite,
    check_in_range,
    check_matrix,
    check_positive,
    check_probability,
    check_vector,
    require,
)


class TestRequire:
    def test_passes_silently(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestCheckMatrix:
    def test_accepts_2d(self):
        out = check_matrix([[1, 2], [3, 4]])
        assert out.shape == (2, 2)
        assert out.dtype == np.float64

    def test_promotes_1d_to_column(self):
        assert check_matrix([1.0, 2.0, 3.0]).shape == (3, 1)

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_matrix(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one row"):
            check_matrix(np.zeros((0, 3)))


class TestCheckVector:
    def test_accepts_1d(self):
        assert check_vector([1, 2, 3]).shape == (3,)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            check_vector([[1], [2]])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_vector(np.array([]))


class TestScalarChecks:
    def test_check_finite_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            check_finite(np.array([1.0, np.nan]))

    def test_check_finite_rejects_inf(self):
        with pytest.raises(ValueError):
            check_finite(np.array([np.inf]))

    def test_check_finite_passes_through(self):
        arr = np.array([1.0, 2.0])
        assert check_finite(arr) is arr

    def test_check_positive(self):
        assert check_positive(2, "x") == 2.0
        with pytest.raises(ValueError, match="must be > 0"):
            check_positive(0, "x")

    def test_check_in_range_inclusive(self):
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        with pytest.raises(ValueError):
            check_in_range(1.5, "x", 0.0, 1.0)

    def test_check_in_range_exclusive(self):
        with pytest.raises(ValueError):
            check_in_range(0.0, "x", 0.0, 1.0, inclusive=False)

    def test_check_probability(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability(-0.01)
