"""Tests for deterministic RNG trees."""

import numpy as np
import pytest

from repro.utils import as_generator, spawn


class TestSpawn:
    def test_same_path_same_stream(self):
        a = spawn(7, "market", 3).random(5)
        b = spawn(7, "market", 3).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_different_streams(self):
        a = spawn(7, "market", 3).random(5)
        b = spawn(7, "market", 4).random(5)
        assert not np.allclose(a, b)

    def test_different_seeds_different_streams(self):
        a = spawn(7, "market").random(5)
        b = spawn(8, "market").random(5)
        assert not np.allclose(a, b)

    def test_string_keys_stable_across_calls(self):
        # CRC32 of repr is process-independent, unlike hash().
        a = spawn(0, "alpha", "beta").integers(0, 1 << 30)
        b = spawn(0, "alpha", "beta").integers(0, 1 << 30)
        assert a == b

    def test_spawn_from_generator_does_not_advance_parent(self):
        parent = np.random.default_rng(3)
        state_before = parent.bit_generator.state
        spawn(parent, "child").random(3)
        assert parent.bit_generator.state == state_before

    def test_spawn_from_seedsequence(self):
        seq = np.random.SeedSequence(42)
        a = spawn(seq, "x").random(3)
        b = spawn(seq, "x").random(3)
        np.testing.assert_array_equal(a, b)

    def test_none_seed_gives_generator(self):
        assert isinstance(spawn(None, "x"), np.random.Generator)

    def test_tuple_keys_supported(self):
        a = spawn(1, ("run", 2)).random(2)
        b = spawn(1, ("run", 2)).random(2)
        np.testing.assert_array_equal(a, b)


class TestAsGenerator:
    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_int_seed_deterministic(self):
        np.testing.assert_array_equal(
            as_generator(5).random(4), as_generator(5).random(4)
        )

    def test_seedsequence(self):
        seq = np.random.SeedSequence(9)
        a = as_generator(seq).random(3)
        b = as_generator(np.random.SeedSequence(9)).random(3)
        np.testing.assert_array_equal(a, b)

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)
