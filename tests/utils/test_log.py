"""Tests for the library logging helper."""

import logging

from repro.utils import get_logger


class TestGetLogger:
    def test_namespaced_under_library_root(self):
        assert get_logger("engine").name == "repro.engine"

    def test_already_namespaced_untouched(self):
        assert get_logger("repro.market.engine").name == "repro.market.engine"

    def test_null_handler_attached(self):
        logger = get_logger("handler_check")
        assert any(isinstance(h, logging.NullHandler) for h in logger.handlers)

    def test_hierarchy_controllable_from_root(self):
        root = logging.getLogger("repro")
        child = get_logger("hierarchy_check")
        root.setLevel(logging.CRITICAL)
        try:
            assert child.getEffectiveLevel() == logging.CRITICAL
        finally:
            root.setLevel(logging.NOTSET)
