"""End-to-end integration: data -> ML -> VFL -> market -> outcome.

One small Titanic market exercises every subsystem in sequence and
checks the economic invariants that tie them together.
"""

import numpy as np
import pytest

from repro.market import Market, is_equilibrium_price
from repro.security import encrypted_gain, generate_keypair, secure_payment


@pytest.fixture(scope="module")
def market():
    return Market.for_dataset(
        "titanic",
        base_model="random_forest",
        quick=True,
        seed=4,
        n_bundles=14,
        model_params={"n_estimators": 8, "max_depth": 6},
    )


class TestFullPipeline:
    def test_market_invariants(self, market):
        # The oracle's catalogue and the reserved prices line up, and
        # the target is achievable within the budget.
        assert set(market.oracle.bundles) == set(market.reserved_prices)
        assert 0 < market.config.target_gain <= market.oracle.max_gain + 1e-12

    def test_strategic_outcome_economically_consistent(self, market):
        outcome = market.bargain(seed=0)
        assert outcome.accepted
        # Net profit identity (Eq. 3).
        expected = market.config.utility_rate * outcome.delta_g - outcome.payment
        assert outcome.net_profit == pytest.approx(expected)
        # The payment respects the quote's bounds (Def. 2.3).
        assert outcome.quote.base - 1e-9 <= outcome.payment <= outcome.quote.cap + 1e-9
        # The transacted bundle's reserved price is satisfied.
        assert outcome.reserved_of_bundle.satisfied_by(outcome.quote)

    def test_settlement_near_equilibrium(self, market):
        outcome = market.bargain(seed=1)
        if outcome.accepted:
            # Eq. 5 within the quantisation of the bundle ladder.
            assert is_equilibrium_price(
                outcome.quote, outcome.delta_g, tolerance=0.02
            )

    def test_history_payments_match_quotes(self, market):
        outcome = market.bargain(seed=2)
        for record in outcome.history:
            if record.bundle is not None:
                assert record.payment == pytest.approx(
                    record.quote.payment(record.delta_g)
                )

    def test_secure_settlement_layer(self, market):
        """The §3.6 mitigation plugs onto a real outcome unchanged."""
        outcome = market.bargain(seed=3)
        if not outcome.accepted:
            pytest.skip("no transaction this seed")
        pub, priv = generate_keypair(bits=256, rng=0)
        enc = encrypted_gain(outcome.delta_g, pub, rng=1)
        paid = secure_payment(enc, outcome.quote, priv, rng=2)
        assert paid == pytest.approx(outcome.payment, abs=1e-6)

    def test_strategy_ranking_holds(self, market):
        """The paper's headline comparison on a fresh market."""
        strategic = market.bargain_many(8, base_seed=11)
        increase = market.bargain_many(8, base_seed=11, task="increase_price")
        acc_s = [o for o in strategic if o.accepted]
        acc_i = [o for o in increase if o.accepted]
        assert acc_s, "strategic bargaining should transact"
        if acc_i:
            assert np.mean([o.net_profit for o in acc_s]) >= np.mean(
                [o.net_profit for o in acc_i]
            )
