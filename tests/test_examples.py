"""Smoke coverage for the example scripts.

The examples build real markets (seconds each), so unit tests only
verify they parse, import their dependencies, and expose a ``main``;
full executions are exercised manually / in CI nightly.
"""

import ast
import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(EXAMPLES) >= 3  # quickstart + >= 2 domain scenarios


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
class TestExampleScripts:
    def test_parses(self, path):
        ast.parse(path.read_text())

    def test_has_main_guard(self, path):
        source = path.read_text()
        assert 'if __name__ == "__main__":' in source
        assert "def main(" in source

    def test_has_docstring(self, path):
        module = ast.parse(path.read_text())
        assert ast.get_docstring(module), f"{path.stem} lacks a docstring"

    def test_importable(self, path):
        spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)  # runs top-level imports only
        assert callable(module.main)
