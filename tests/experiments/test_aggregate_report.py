"""Tests for aggregation statistics and plain-text rendering."""

import os

import numpy as np
import pytest

from repro.experiments import (
    ascii_chart,
    density,
    format_table,
    mean_ci,
    mean_std,
    nan_mean_ci,
    write_csv,
)


class TestMeanCI:
    def test_point_estimate(self):
        mean, half = mean_ci([2.0, 4.0, 6.0])
        assert mean == pytest.approx(4.0)
        assert half > 0

    def test_single_value_no_interval(self):
        assert mean_ci([3.0]) == (3.0, 0.0)

    def test_confidence_widens_interval(self):
        data = np.random.default_rng(0).normal(size=50)
        _, hw95 = mean_ci(data, confidence=0.95)
        _, hw99 = mean_ci(data, confidence=0.99)
        assert hw99 > hw95

    def test_coverage_approximately_nominal(self):
        rng = np.random.default_rng(1)
        hits = 0
        for _ in range(300):
            sample = rng.normal(0, 1, 30)
            mean, half = mean_ci(sample)
            hits += abs(mean) <= half
        assert 0.87 <= hits / 300 <= 0.99

    def test_mean_std(self):
        m, s = mean_std([1.0, 3.0])
        assert m == 2.0
        assert s == pytest.approx(np.std([1, 3], ddof=1))


class TestNanMeanCI:
    def test_ignores_terminated_runs(self):
        matrix = np.array([[1.0, 2.0, np.nan], [3.0, 4.0, 5.0], [5.0, np.nan, np.nan]])
        mean, half, alive = nan_mean_ci(matrix)
        np.testing.assert_array_equal(alive, [3, 2, 1])
        assert mean[0] == pytest.approx(3.0)
        assert np.isnan(mean[2])  # below min_alive

    def test_min_alive_threshold(self):
        matrix = np.array([[1.0], [np.nan]])
        mean, _, _ = nan_mean_ci(matrix, min_alive=1)
        assert mean[0] == 1.0


class TestDensity:
    def test_integrates_to_one(self):
        rng = np.random.default_rng(0)
        grid, values = density(rng.normal(size=400), n_grid=256)
        area = np.trapezoid(values, grid)
        assert area == pytest.approx(1.0, abs=0.06)

    def test_peak_near_mode(self):
        rng = np.random.default_rng(1)
        grid, values = density(rng.normal(5.0, 0.2, 500))
        assert abs(grid[np.argmax(values)] - 5.0) < 0.2

    def test_degenerate_samples_fall_back(self):
        grid, values = density([2.0, 2.0, 2.0])
        assert values.max() == 1.0
        assert abs(grid[np.argmax(values)] - 2.0) < 0.5

    def test_custom_grid_respected(self):
        grid_in = np.linspace(-1, 1, 16)
        grid, _ = density([0.0, 0.1, -0.1, 0.2], grid_in)
        np.testing.assert_array_equal(grid, grid_in)


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title(self):
        assert format_table(["x"], [[1]], title="T").splitlines()[0] == "T"

    def test_nan_rendered_as_dash(self):
        assert "-" in format_table(["x"], [[float("nan")]]).splitlines()[-1]

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])


class TestAsciiChart:
    def test_contains_series_glyphs_and_legend(self):
        out = ascii_chart({"up": np.linspace(0, 1, 30), "down": np.linspace(1, 0, 30)})
        assert "*" in out and "o" in out
        assert "up" in out and "down" in out

    def test_nan_segments_blank(self):
        values = np.array([0.0, 1.0] + [np.nan] * 30)
        out = ascii_chart({"s": values}, width=32)
        # The right half of the chart should be blank for this series.
        rows = out.splitlines()[2:-2]
        right_halves = "".join(row[-10:] for row in rows)
        assert "*" not in right_halves

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({"s": np.array([np.nan, np.nan])})


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "out" / "data.csv")
        write_csv(path, ["a", "b"], [np.array([1.0, 2.0]), np.array([3.0, 4.0])])
        lines = open(path).read().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,3"

    def test_ragged_columns_padded(self, tmp_path):
        path = str(tmp_path / "data.csv")
        write_csv(path, ["a", "b"], [[1, 2, 3], [9]])
        lines = open(path).read().splitlines()
        assert lines[2] == "2,"

    def test_header_mismatch_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(str(tmp_path / "x.csv"), ["a"], [[1], [2]])
