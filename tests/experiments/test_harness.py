"""Tests for the experiment harness (trace extraction + generators).

Heavier generators (figures 2-4, tables 3-4) are exercised end-to-end
by the benchmark suite; here we test the plumbing and the cheap
generators.
"""

import numpy as np
import pytest

from repro.experiments import figure1_series, round_matrix, scale, table2_rows
from repro.experiments.config import _FULL, _QUICK
from repro.market import (
    BargainingEngine,
    FeatureBundle,
    MarketConfig,
    PerformanceOracle,
    ReservedPrice,
    StrategicDataParty,
    StrategicTaskParty,
)
from repro.utils import spawn


class TestScale:
    def test_default_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert scale().quick

    def test_full_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        tier = scale()
        assert not tier.quick
        assert tier.n_runs == 100  # the paper's repetition count

    def test_full_exceeds_quick(self):
        assert _FULL.n_runs > _QUICK.n_runs
        assert _FULL.exploration_rounds >= _QUICK.exploration_rounds


class TestRoundMatrix:
    def outcomes(self):
        bundles = [FeatureBundle.of(range(i + 1)) for i in range(6)]
        gains = {b: 0.03 * (i + 1) for i, b in enumerate(bundles)}
        reserved = {
            b: ReservedPrice(rate=5.0 + 0.5 * i, base=0.8 + 0.05 * i)
            for i, b in enumerate(bundles)
        }
        config = MarketConfig(
            utility_rate=300.0, budget=4.0, initial_rate=5.2, initial_base=0.85,
            target_gain=0.18, eps_d=1e-3, eps_t=1e-3, n_price_samples=48,
        )
        oracle = PerformanceOracle.from_gains(gains)
        outs = []
        for seed in range(4):
            engine = BargainingEngine(
                StrategicTaskParty(config, list(gains.values()), rng=spawn(seed, "t")),
                StrategicDataParty(gains, reserved, config),
                oracle,
                utility_rate=config.utility_rate,
                max_rounds=200,
            )
            outs.append(engine.run())
        return outs

    def test_shape_and_padding(self):
        outs = self.outcomes()
        matrix = round_matrix(outs, "net_profit", max_round=100)
        assert matrix.shape == (4, 100)
        for i, o in enumerate(outs):
            if o.accepted:
                # Padded with the final value after termination.
                assert matrix[i, -1] == pytest.approx(o.history[-1].net_profit)

    def test_delta_g_nonnegative_trail(self):
        outs = self.outcomes()
        matrix = round_matrix(outs, "delta_g", max_round=50)
        finite = matrix[np.isfinite(matrix)]
        assert finite.size > 0
        assert finite.min() >= 0.0

    def test_default_max_round(self):
        outs = self.outcomes()
        matrix = round_matrix(outs, "payment")
        assert matrix.shape[1] == max(o.n_rounds for o in outs)


class TestFigure1:
    def test_series_shapes(self):
        series = figure1_series()
        assert series["delta_g"].shape == series["payment"].shape
        assert series["payment"].min() >= 1.0 - 1e-12
        assert series["payment"].max() <= 3.0 + 1e-12

    def test_profit_crosses_zero_at_break_even(self):
        series = figure1_series()
        be = float(series["break_even"][0])
        profit_at_be = np.interp(be, series["delta_g"], series["net_profit"])
        assert abs(profit_at_be) < 0.05


class TestTable2:
    def test_matches_paper_counts(self):
        headers, rows = table2_rows()
        by_name = {r[0]: r[1:] for r in rows}
        assert by_name["Titanic"] == [891, 11, 10, 19]
        assert by_name["Credit"] == [30_000, 25, 9, 21]
        assert by_name["Adult"] == [48_842, 14, 52, 36]
