"""Regression: the market cache key must cover oracle-build settings.

The pre-service cache keyed markets on ``(dataset, model, seed, tier)``
only, so a ``--no-cache`` invocation could silently reuse a
process-cached market built under different persistence settings (and
report that build's statistics as its own).  Keys are now the full
:meth:`MarketSpec.digest`, which includes ``jobs``/``cache_dir``/
``no_cache``.
"""

import pytest

from repro.experiments import runner
from repro.market.market import Market
from repro.service.manager import MarketPool


@pytest.fixture
def isolated_pool(monkeypatch):
    """A fresh pool with market construction stubbed out (and counted)."""
    pool = MarketPool()
    monkeypatch.setattr(runner, "shared_pool", lambda: pool)
    built = []

    def fake_build(cls, spec, **kwargs):
        built.append(spec)
        return object()

    monkeypatch.setattr(Market, "from_spec", classmethod(fake_build))
    return pool, built


class TestMarketCacheKey:
    def test_same_settings_reuse(self, isolated_pool):
        pool, built = isolated_pool
        first = runner.get_market("titanic", cache=None)
        again = runner.get_market("titanic", cache=None)
        assert first is again
        assert len(built) == 1

    def test_cache_setting_enters_key(self, isolated_pool):
        """A --no-cache run must not reuse a cache-backed build."""
        pool, built = isolated_pool
        cached = runner.get_market("titanic", cache="/tmp/oracle-cache")
        uncached = runner.get_market("titanic", cache=None)
        assert cached is not uncached
        assert len(built) == 2
        assert built[0].cache_dir == "/tmp/oracle-cache" and not built[0].no_cache
        assert built[1].no_cache

    def test_jobs_enter_key(self, isolated_pool):
        pool, built = isolated_pool
        serial = runner.get_market("titanic", cache=None)
        parallel = runner.get_market("titanic", jobs=4, cache=None)
        assert serial is not parallel
        assert [spec.jobs for spec in built] == [1, 4]

    def test_market_is_cached_agrees_with_get_market(self, isolated_pool):
        pool, built = isolated_pool
        assert not runner.market_is_cached("titanic", cache=None)
        runner.get_market("titanic", cache=None)
        assert runner.market_is_cached("titanic", cache=None)
        # Different settings -> different key -> not cached yet.
        assert not runner.market_is_cached("titanic", jobs=4, cache=None)
        assert not runner.market_is_cached("titanic", cache="/tmp/x")

    def test_gain_cache_object_normalised_to_directory(self, isolated_pool):
        pool, built = isolated_pool
        from repro.oracle_factory import GainCache

        runner.get_market("titanic", cache=GainCache("/tmp/oracle-cache"))
        assert runner.market_is_cached("titanic", cache="/tmp/oracle-cache")
        assert built[0].cache_dir == "/tmp/oracle-cache"

    def test_spec_first_form(self, isolated_pool):
        pool, built = isolated_pool
        spec = runner.spec_for("credit", "mlp", seed=2, jobs=3, cache=None)
        market = runner.get_market(spec)
        assert runner.market_is_cached(spec)
        assert runner.get_market(spec) is market
        assert built[0].dataset == "credit" and built[0].base_model == "mlp"

    def test_clear_market_cache_clears_shared_pool(self):
        from repro.service.manager import shared_pool

        runner.clear_market_cache()
        assert len(shared_pool()) == 0
