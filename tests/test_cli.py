"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bargain_defaults(self):
        args = build_parser().parse_args(["bargain"])
        assert args.dataset == "titanic"
        assert args.task == "strategic"
        assert args.runs == 1

    def test_table_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])

    def test_figure_csv_dir(self):
        args = build_parser().parse_args(["figure", "1", "--csv-dir", "/tmp/x"])
        assert args.csv_dir == "/tmp/x"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bargain", "--dataset", "mnist"])


class TestCommands:
    def test_figure1_runs_without_market(self, capsys):
        assert main(["figure", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1a" in out and "Figure 1b" in out

    def test_figure1_writes_csv(self, tmp_path, capsys):
        assert main(["figure", "1", "--csv-dir", str(tmp_path)]) == 0
        assert (tmp_path / "fig1.csv").exists()

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        out = capsys.readouterr().out
        assert "Titanic" in out and "48842" in out

    def test_bargain_prints_summary(self, capsys):
        # Uses the cached market from other tests when available; still
        # bounded by quick-mode market construction otherwise.
        assert main(["bargain", "--runs", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "market: titanic/random_forest" in out
        assert "run 0:" in out and "run 1:" in out
