"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bargain_defaults(self):
        args = build_parser().parse_args(["bargain"])
        assert args.dataset == "titanic"
        assert args.task == "strategic"
        assert args.runs == 1

    def test_table_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])

    def test_figure_csv_dir(self):
        args = build_parser().parse_args(["figure", "1", "--csv-dir", "/tmp/x"])
        assert args.csv_dir == "/tmp/x"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bargain", "--dataset", "mnist"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.sessions == 1000
        assert args.preset is None  # resolved to dataset name or synthetic
        assert args.dataset is None
        assert args.batch_size == 1024
        assert args.jobs == 1
        assert not args.no_cache

    def test_oracle_options_parse(self):
        args = build_parser().parse_args(
            ["bargain", "--jobs", "4", "--no-cache", "--cache-dir", "/tmp/c"]
        )
        assert args.jobs == 4
        assert args.no_cache
        assert args.cache_dir == "/tmp/c"
        args = build_parser().parse_args(
            ["simulate", "--dataset", "credit", "--base-model", "mlp", "--jobs", "2"]
        )
        assert args.dataset == "credit"
        assert args.base_model == "mlp"
        assert args.jobs == 2

    def test_simulate_oracle_flags_require_dataset(self):
        # Oracle knobs on the synthetic path would be silently inert.
        for argv in (["simulate", "--sessions", "5", "--jobs", "4"],
                     ["simulate", "--sessions", "5", "--no-cache"],
                     ["simulate", "--sessions", "5", "--cache-dir", "/tmp/c"],
                     ["simulate", "--sessions", "5", "--base-model", "mlp"]):
            with pytest.raises(SystemExit, match="only apply with --dataset"):
                main(argv)

    def test_simulate_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--preset", "mnist"])

    def test_simulate_malformed_mix_exits_cleanly(self):
        with pytest.raises(SystemExit, match="not a number"):
            main(["simulate", "--sessions", "5",
                  "--mix", "strategic:strategic=abc"])
        with pytest.raises(SystemExit, match="invalid population spec"):
            main(["simulate", "--sessions", "5", "--cost", "frobnicate:2=1.0"])
        with pytest.raises(SystemExit, match="invalid population spec"):
            main(["simulate", "--sessions", "5", "--mix", "alien:strategic=1"])

    def test_simulate_cost_without_parameter_rejected(self):
        # 'constant=0.3' (missing ':a') must not silently become
        # ConstantCost(0), which would flip on Eq. 6/7 acceptance.
        with pytest.raises(SystemExit, match="needs a parameter"):
            main(["simulate", "--sessions", "5", "--cost", "constant=0.3"])

    def test_simulate_none_cost_with_parameter_rejected(self):
        # 'none:0.7' (colon for '=') must not silently default weight 1.
        with pytest.raises(SystemExit, match="takes no parameter"):
            main(["simulate", "--sessions", "5", "--cost", "none:0.7"])

    def test_simulate_bad_counts_exit_cleanly(self):
        for argv in (["simulate", "--sessions", "0"],
                     ["simulate", "--batch-size", "0"],
                     ["simulate", "--bins", "0"]):
            with pytest.raises(SystemExit, match="must be >= 1"):
                main(argv)


class TestCommands:
    def test_figure1_runs_without_market(self, capsys):
        assert main(["figure", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1a" in out and "Figure 1b" in out

    def test_figure1_writes_csv(self, tmp_path, capsys):
        assert main(["figure", "1", "--csv-dir", str(tmp_path)]) == 0
        assert (tmp_path / "fig1.csv").exists()

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        out = capsys.readouterr().out
        assert "Titanic" in out and "48842" in out

    def test_simulate_prints_report(self, capsys):
        assert main(["simulate", "--sessions", "60", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "population: 60 sessions" in out
        assert "Outcomes" in out and "accepted" in out

    def test_simulate_json_and_digest_guard(self, tmp_path, capsys):
        path = str(tmp_path / "report.json")
        assert main(["simulate", "--sessions", "40", "--seed", "2",
                     "--json", path]) == 0
        import json

        def _reject_constant(token):  # NaN/Infinity are not valid JSON
            raise AssertionError(f"spec-invalid JSON token {token!r} in export")

        payload = json.loads((tmp_path / "report.json").read_text(),
                             parse_constant=_reject_constant)
        assert payload["n_sessions"] == 40
        digest = payload["digest"]
        capsys.readouterr()
        # Matching digest passes; a wrong one fails the process.
        assert main(["simulate", "--sessions", "40", "--seed", "2",
                     "--expect-digest", digest]) == 0
        assert main(["simulate", "--sessions", "40", "--seed", "2",
                     "--expect-digest", "deadbeefdeadbeef"]) == 1

    def test_simulate_mix_parsing(self, capsys):
        assert main(["simulate", "--sessions", "30", "--seed", "3",
                     "--mix", "strategic:strategic=0.7,increase_price:strategic=0.3",
                     "--cost", "none=0.8,linear:0.02=0.2"]) == 0
        out = capsys.readouterr().out
        assert "Strategy mix" in out
        assert "increase_price/strategic" in out

    def test_bargain_prints_summary(self, capsys):
        # Uses the cached market from other tests when available; still
        # bounded by quick-mode market construction otherwise.
        assert main(["bargain", "--runs", "2", "--seed", "1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "market: titanic/random_forest" in out
        assert "run 0:" in out and "run 1:" in out

    def test_simulate_with_real_dataset_oracle(self, tmp_path, capsys):
        """End-to-end: --dataset routes the population through a
        factory-built oracle (and the preset anchors to the dataset)."""
        from repro.experiments import clear_market_cache

        argv = ["simulate", "--sessions", "40", "--seed", "1",
                "--dataset", "titanic", "--cache-dir", str(tmp_path)]
        clear_market_cache()  # force a cold factory build
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "oracle build:" in out
        assert "population: 40 sessions" in out
        # A fresh process (simulated by dropping the in-process market
        # cache) replays every course from the persistent gain cache.
        clear_market_cache()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 courses run" in out
