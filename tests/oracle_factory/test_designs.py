"""Shared-binning exactness: slices equal per-course re-bins."""

import numpy as np
import pytest

from repro.data import load_titanic
from repro.ml.tree import quantile_bin
from repro.oracle_factory import SharedDesigns, slice_design
from repro.utils.rng import spawn


@pytest.fixture(scope="module")
def dataset():
    return load_titanic(500, seed=0).prepare(seed=0)


@pytest.fixture(scope="module")
def shared(dataset):
    return SharedDesigns(dataset, max_bins=32)


def assert_designs_equal(a, b):
    np.testing.assert_array_equal(a.codes, b.codes)
    assert a.n_bins == b.n_bins
    assert len(a.edges) == len(b.edges)
    for ea, eb in zip(a.edges, b.edges):
        np.testing.assert_array_equal(ea, eb)


class TestSliceDesign:
    def test_slice_equals_rebin(self, dataset):
        """The heart of shared binning: edges are per-column, so a
        column slice of the full design equals re-binning the subset."""
        X = np.hstack([dataset.task_train, dataset.data_train])
        full = quantile_bin(X, max_bins=32)
        rng = spawn(0, "cols")
        for _ in range(10):
            k = int(rng.integers(1, X.shape[1] + 1))
            cols = np.sort(rng.choice(X.shape[1], size=k, replace=False))
            sliced = slice_design(full, cols)
            rebinned = quantile_bin(X[:, cols], max_bins=32)
            assert_designs_equal(sliced, rebinned)

    def test_n_bins_recomputed_from_slice(self, dataset):
        """A slice of low-cardinality columns must not inherit the full
        design's padded bin count."""
        X = np.hstack([dataset.task_train, dataset.data_train])
        full = quantile_bin(X, max_bins=32)
        per_col_max = full.codes.max(axis=0)
        narrow = int(np.argmin(per_col_max))
        sliced = slice_design(full, [narrow])
        assert sliced.n_bins == int(per_col_max[narrow]) + 1
        assert sliced.n_bins <= full.n_bins

    def test_bad_columns_rejected(self, dataset):
        X = np.hstack([dataset.task_train, dataset.data_train])
        full = quantile_bin(X, max_bins=32)
        with pytest.raises(ValueError, match="at least one column"):
            slice_design(full, [])
        with pytest.raises(ValueError, match="columns must be in"):
            slice_design(full, [X.shape[1]])


class TestSharedDesigns:
    def test_course_design_equals_manual_rebin(self, dataset, shared):
        bundle = (0, 3, 5)
        X = np.hstack(
            [dataset.task_train, dataset.data_train[:, list(bundle)]]
        )
        assert_designs_equal(shared.course_design(bundle), quantile_bin(X))

    def test_isolated_design_is_task_only(self, dataset, shared):
        assert_designs_equal(
            shared.course_design(None), quantile_bin(dataset.task_train)
        )
        assert shared.course_design(None).n_features == dataset.d_task

    def test_data_design_matches_party_rebin(self, dataset, shared):
        """The federated path's per-bundle design, from the same slice."""
        bundle = (1, 4)
        rebinned = quantile_bin(dataset.data_train[:, list(bundle)])
        assert_designs_equal(shared.data_design(bundle), rebinned)

    def test_test_codes_use_prediction_semantics(self, dataset, shared):
        """side="left" codes: code <= b  <=>  x <= edges[b]."""
        codes = shared.course_test_codes(None)
        X_test = dataset.task_test
        for j in range(min(4, codes.shape[1])):
            edges = shared.joint_design.edges[j]
            for b in range(edges.shape[0]):
                np.testing.assert_array_equal(
                    codes[:, j] <= b, X_test[:, j] <= edges[b]
                )

    def test_bad_bundle_rejected(self, shared):
        with pytest.raises(ValueError, match="bundle indices"):
            shared.course_design((shared.d_data,))
        with pytest.raises(ValueError, match="at least one feature"):
            shared.course_design(())
