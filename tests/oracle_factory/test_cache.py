"""Gain-cache behaviour: accounting, invalidation, corruption recovery."""

import json
import os

import pytest

from repro.data import load_titanic
from repro.market.bundle import FeatureBundle
from repro.oracle_factory import GainCache, build_oracle, default_cache_dir
from repro.oracle_factory.cache import dataset_digest

PARAMS = {"n_estimators": 4, "max_depth": 4}


@pytest.fixture(scope="module")
def dataset():
    return load_titanic(300, seed=0).prepare(seed=0)


@pytest.fixture(scope="module")
def bundles():
    return [FeatureBundle.of([0]), FeatureBundle.of([1, 2]), FeatureBundle.of([0, 3])]


def build(dataset, bundles, cache, **overrides):
    kwargs = dict(model_params=PARAMS, seed=0, jobs=1, cache=cache)
    kwargs.update(overrides)
    return build_oracle(dataset, bundles, **kwargs)


class TestAccounting:
    def test_cold_build_is_all_misses(self, dataset, bundles, tmp_path):
        cache = GainCache(str(tmp_path))
        _, report = build(dataset, bundles, cache)
        # one isolated course + one per bundle
        assert report.cache_stats.misses == len(bundles) + 1
        assert report.cache_stats.hits == 0
        assert report.courses_run == len(bundles) + 1
        assert report.courses_cached == 0

    def test_warm_build_is_all_hits(self, dataset, bundles, tmp_path):
        cache = GainCache(str(tmp_path))
        cold, _ = build(dataset, bundles, cache)
        warm, report = build(dataset, bundles, cache)
        assert report.cache_stats.hits == len(bundles) + 1
        assert report.cache_stats.misses == 0
        assert report.courses_run == 0
        assert warm.gains() == cold.gains()
        assert warm.isolated == cold.isolated

    def test_partial_catalogue_extension(self, dataset, bundles, tmp_path):
        """New bundles run; finished ones are served from disk."""
        cache = GainCache(str(tmp_path))
        build(dataset, bundles[:2], cache)
        _, report = build(dataset, bundles, cache)
        assert report.courses_run == 1  # only the new bundle
        assert report.cache_stats.hits == 3  # isolated + two old bundles

    def test_repeat_extension_reuses_prefix(self, dataset, bundles, tmp_path):
        """Raising n_repeats reuses every finished repeat."""
        cache = GainCache(str(tmp_path))
        build(dataset, bundles, cache, n_repeats=1)
        _, report = build(dataset, bundles, cache, n_repeats=2)
        assert report.courses_run == len(bundles) + 1  # repeat 1 only

    def test_no_cache_runs_everything(self, dataset, bundles):
        _, report = build(dataset, bundles, None)
        assert report.cache_stats is None
        assert report.courses_run == len(bundles) + 1


class TestInvalidation:
    def fingerprint(self, dataset, **kw):
        return GainCache.fingerprint(
            dataset,
            base_model=kw.get("base_model", "random_forest"),
            model_params=kw.get("model_params", PARAMS),
            seed=kw.get("seed", 0),
        )

    def test_model_params_change_key(self, dataset):
        a = self.fingerprint(dataset)
        b = self.fingerprint(dataset, model_params={**PARAMS, "max_depth": 5})
        assert a != b

    def test_seed_and_model_change_key(self, dataset):
        assert self.fingerprint(dataset) != self.fingerprint(dataset, seed=1)
        assert self.fingerprint(dataset) != self.fingerprint(
            dataset, base_model="mlp", model_params={}
        )

    def test_dataset_digest_covers_content(self, dataset):
        other = load_titanic(300, seed=1).prepare(seed=1)
        assert dataset_digest(dataset) != dataset_digest(other)
        assert self.fingerprint(dataset) != self.fingerprint(other)

    def test_params_change_forces_recompute(self, dataset, bundles, tmp_path):
        cache = GainCache(str(tmp_path))
        build(dataset, bundles, cache)
        _, report = build(
            dataset, bundles, cache,
            model_params={**PARAMS, "n_estimators": 5},
        )
        assert report.courses_run == len(bundles) + 1
        assert report.cache_stats.hits == 0


class TestRobustness:
    def _entry_files(self, root):
        return [
            os.path.join(dirpath, name)
            for dirpath, _, names in os.walk(root)
            for name in names
            if name.endswith(".json")
        ]

    def test_corrupted_file_recovered(self, dataset, bundles, tmp_path):
        cache = GainCache(str(tmp_path))
        cold, _ = build(dataset, bundles, cache)
        (path,) = self._entry_files(tmp_path)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{ not json !!")
        rebuilt, report = build(dataset, bundles, cache)
        assert report.courses_run == len(bundles) + 1  # cache was unusable
        assert rebuilt.gains() == cold.gains()
        # ...and the rewritten file is valid again.
        with open(path, encoding="utf-8") as fh:
            json.load(fh)

    def test_wrong_schema_treated_as_empty(self, dataset, bundles, tmp_path):
        cache = GainCache(str(tmp_path))
        build(dataset, bundles, cache)
        (path,) = self._entry_files(tmp_path)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"version": 999, "isolated": {}, "bundles": {}}, fh)
        _, report = build(dataset, bundles, cache)
        assert report.courses_run == len(bundles) + 1

    def test_non_numeric_course_values_treated_as_empty(self, dataset, bundles,
                                                        tmp_path):
        """Valid JSON with rotten values must not crash later builds."""
        cache = GainCache(str(tmp_path))
        cold, _ = build(dataset, bundles, cache)
        (path,) = self._entry_files(tmp_path)
        with open(path, encoding="utf-8") as fh:
            entry = json.load(fh)
        label = next(iter(entry["bundles"]))
        entry["bundles"][label]["0"] = "not-a-number"
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(entry, fh)
        rebuilt, report = build(dataset, bundles, cache)
        assert report.courses_run == len(bundles) + 1
        assert rebuilt.gains() == cold.gains()

    def test_partial_results_persist_when_a_course_crashes(
        self, dataset, bundles, tmp_path, monkeypatch
    ):
        """An interrupt mid-build must not discard finished courses."""
        from repro.oracle_factory.factory import CourseRunner

        cache = GainCache(str(tmp_path))
        poison = bundles[-1].indices
        original = CourseRunner.joint

        def crashing_joint(self, bundle, repeat):
            if tuple(bundle) == poison:
                raise KeyboardInterrupt
            return original(self, bundle, repeat)

        monkeypatch.setattr(CourseRunner, "joint", crashing_joint)
        with pytest.raises(KeyboardInterrupt):
            build(dataset, bundles, cache)
        monkeypatch.setattr(CourseRunner, "joint", original)
        _, report = build(dataset, bundles, cache)
        # Only the poisoned bundle re-runs; isolated + finished bundles
        # were persisted by the finally-store.
        assert report.courses_run == 1
        assert report.cache_stats.hits == len(bundles)  # isolated + others

    def test_string_cache_argument(self, dataset, bundles, tmp_path):
        """A plain directory path works wherever a GainCache does."""
        build(dataset, bundles, str(tmp_path / "c"))
        _, report = build(dataset, bundles, str(tmp_path / "c"))
        assert report.courses_run == 0

    def test_default_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_ORACLE_CACHE", str(tmp_path / "envcache"))
        assert default_cache_dir() == str(tmp_path / "envcache")
        monkeypatch.delenv("REPRO_ORACLE_CACHE")
        assert default_cache_dir().endswith(os.path.join("repro", "oracle"))

    def test_store_merges_with_disk(self, dataset, bundles, tmp_path):
        """Two builds that loaded the entry cold must not clobber each
        other's finished courses: store() merges before replacing."""
        from repro.vfl.runner import resolve_model_params

        cache = GainCache(str(tmp_path))
        build(dataset, bundles[:2], cache)  # process 1 writes its courses
        fp = GainCache.fingerprint(
            dataset,
            base_model="random_forest",
            model_params=resolve_model_params("random_forest", PARAMS),
            seed=0,
        )
        # Process 2 loaded *before* process 1 stored, ran a different
        # bundle, and now stores its stale snapshot.
        stale = {"version": 1, "isolated": {"0": 0.5}, "bundles": {"9,9": {"0": 0.7}}}
        cache.store(fp, stale)
        merged = cache.load(fp)
        labels = set(merged["bundles"])
        assert "9,9" in labels  # process 2's course survived...
        assert {"0", "1,2"} <= labels  # ...and so did process 1's

    def test_float_roundtrip_exact(self, dataset, bundles, tmp_path):
        """JSON float round-trips keep warm oracles bit-identical."""
        cache = GainCache(str(tmp_path))
        cold, _ = build(dataset, bundles, cache)
        warm, _ = build(dataset, bundles, cache)
        for b in bundles:
            assert warm.delta_g(b) == cold.delta_g(b)
