"""Bit-identity of the fast course kernel and the factory build.

These are the golden guarantees of the oracle factory: for the same
seeds it must reproduce the seed serial path **exactly** — not within
tolerance — across kernels, worker counts and cache states.
"""

import numpy as np
import pytest

from repro.data import load_titanic
from repro.market.bundle import FeatureBundle, sample_bundles
from repro.market.oracle import PerformanceOracle
from repro.ml.forest import RandomForestClassifier
from repro.oracle_factory import FastForestCourse, SharedDesigns, build_oracle
from repro.utils.rng import spawn
from repro.vfl import Channel, run_vfl

PARAMS = {"n_estimators": 6, "max_depth": 6}


@pytest.fixture(scope="module")
def dataset():
    return load_titanic(500, seed=0).prepare(seed=0)


@pytest.fixture(scope="module")
def shared(dataset):
    return SharedDesigns(dataset, max_bins=32)


class TestFastCourseKernel:
    def _forest_proba(self, dataset, bundle, seed, **kw):
        Xtr = np.hstack([dataset.task_train, dataset.data_train[:, list(bundle)]])
        Xte = np.hstack([dataset.task_test, dataset.data_test[:, list(bundle)]])
        rf = RandomForestClassifier(
            kw.get("n_estimators", 6),
            max_depth=kw.get("max_depth", 6),
            min_samples_leaf=kw.get("min_samples_leaf", 2),
            max_features=kw.get("max_features", "sqrt"),
            bootstrap=kw.get("bootstrap", True),
            rng=spawn(seed, "course", tuple(bundle)),
        )
        rf.fit(Xtr, dataset.y_train.astype(np.float64))
        return rf.predict_proba(Xte)

    def _fast_proba(self, dataset, shared, bundle, seed, **kw):
        course = FastForestCourse(
            shared.course_design(bundle),
            shared.y_train,
            n_estimators=kw.get("n_estimators", 6),
            max_depth=kw.get("max_depth", 6),
            min_samples_leaf=kw.get("min_samples_leaf", 2),
            max_features=kw.get("max_features", "sqrt"),
            bootstrap=kw.get("bootstrap", True),
            rng=spawn(seed, "course", tuple(bundle)),
        )
        course.fit()
        return course.predict_proba_binned(shared.course_test_codes(bundle))

    def test_probabilities_equal_centralized_forest(self, dataset, shared):
        for seed, bundle in [(0, (0, 2, 5)), (1, (1,)), (7, tuple(range(dataset.d_data)))]:
            p_fast = self._fast_proba(dataset, shared, bundle, seed)
            p_ref = self._forest_proba(dataset, bundle, seed)
            np.testing.assert_array_equal(p_fast, p_ref)

    def test_equal_without_feature_subsampling(self, dataset, shared):
        kw = {"max_features": None, "bootstrap": False}
        p_fast = self._fast_proba(dataset, shared, (0, 1, 2), 3, **kw)
        p_ref = self._forest_proba(dataset, (0, 1, 2), 3, **kw)
        np.testing.assert_array_equal(p_fast, p_ref)

    def test_equal_across_depth_and_leaf_params(self, dataset, shared):
        kw = {"max_depth": 3, "min_samples_leaf": 5, "n_estimators": 4}
        p_fast = self._fast_proba(dataset, shared, (2, 4), 11, **kw)
        p_ref = self._forest_proba(dataset, (2, 4), 11, **kw)
        np.testing.assert_array_equal(p_fast, p_ref)


class TestPrebinnedProtocolPath:
    def test_run_vfl_with_shared_designs_identical(self, dataset, shared):
        """The federated protocol accepts pre-binned designs and is
        unchanged by them — the factory's shared slices are exact."""
        bundle = (0, 3, 6)
        plain = run_vfl(dataset, bundle, seed=5, m0=0.6)
        pre = run_vfl(
            dataset,
            bundle,
            seed=5,
            m0=0.6,
            task_design=shared.task_design(),
            data_design=shared.data_design(bundle),
        )
        assert pre.performance_joint == plain.performance_joint
        assert pre.channel_stats == plain.channel_stats

    def test_mlp_rejects_designs(self, dataset, shared):
        with pytest.raises(ValueError, match="random_forest"):
            run_vfl(
                dataset, (0,), base_model="mlp", seed=0, m0=0.6,
                task_design=shared.task_design(),
            )

    def test_mismatched_design_rejected(self, dataset, shared):
        with pytest.raises(ValueError, match="column count"):
            run_vfl(
                dataset, (0, 1), seed=0, m0=0.6,
                data_design=shared.data_design((0, 1, 2)),
            )


class TestFactoryEquivalence:
    @pytest.fixture(scope="class")
    def catalogue(self, dataset):
        return sample_bundles(
            dataset.d_data, 6, rng=spawn(0, "cat"), min_size=1
        )

    @pytest.fixture(scope="class")
    def reference(self, dataset, catalogue):
        return PerformanceOracle.build_serial_reference(
            dataset, catalogue, model_params=PARAMS, seed=0, n_repeats=2
        )

    def test_serial_factory_bit_identical(self, dataset, catalogue, reference):
        oracle, report = build_oracle(
            dataset, catalogue, model_params=PARAMS, seed=0, n_repeats=2, jobs=1
        )
        assert oracle.gains() == reference.gains()
        assert oracle.isolated == reference.isolated
        assert report.courses_run == 2 * (len(catalogue) + 1)

    def test_parallel_factory_bit_identical(self, dataset, catalogue, reference):
        oracle, report = build_oracle(
            dataset, catalogue, model_params=PARAMS, seed=0, n_repeats=2, jobs=2
        )
        assert oracle.gains() == reference.gains()
        assert oracle.isolated == reference.isolated
        assert report.jobs == 2

    def test_default_build_delegates_to_factory(self, dataset, catalogue, reference):
        oracle = PerformanceOracle.build(
            dataset, catalogue, model_params=PARAMS, seed=0, n_repeats=2
        )
        assert oracle.gains() == reference.gains()
        assert oracle.build_report.courses_run == 2 * (len(catalogue) + 1)

    def test_single_bundle_single_repeat(self, dataset):
        bundles = [FeatureBundle.of([0, 1])]
        ref = PerformanceOracle.build_serial_reference(
            dataset, bundles, model_params=PARAMS, seed=42
        )
        oracle, _ = build_oracle(dataset, bundles, model_params=PARAMS, seed=42)
        assert oracle.gains() == ref.gains()

    def test_mlp_factory_matches_reference(self, dataset):
        bundles = [FeatureBundle.of([0]), FeatureBundle.of([1, 2])]
        params = {"epochs": 3}
        ref = PerformanceOracle.build_serial_reference(
            dataset, bundles, base_model="mlp", model_params=params, seed=0
        )
        oracle, _ = build_oracle(
            dataset, bundles, base_model="mlp", model_params=params, seed=0
        )
        assert oracle.gains() == ref.gains()


class TestFederatedCourseStillLossless:
    def test_fed_course_equals_fast_course_delta(self, dataset, shared):
        """End-to-end: ΔG via the federated protocol equals ΔG via the
        fast kernel under the oracle's actual seed derivation."""
        bundle = (0, 2, 4)
        m0 = 0.6
        fed = run_vfl(
            dataset, bundle, seed=0, m0=m0,
            model_params={"n_estimators": 5, "max_depth": 5},
            channel=Channel(),
        )
        course = FastForestCourse(
            shared.course_design(bundle),
            shared.y_train,
            n_estimators=5,
            max_depth=5,
            min_samples_leaf=2,
            max_features="sqrt",
            rng=spawn(0, dataset.name, "random_forest", "joint", bundle),
        )
        course.fit()
        m = course.score_binned(shared.course_test_codes(bundle), shared.y_test)
        assert m == fed.performance_joint
