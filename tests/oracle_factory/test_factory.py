"""Factory scheduling: reports, jobs resolution, market integration."""

import pytest

from repro.data import load_titanic
from repro.market.bundle import FeatureBundle
from repro.market.market import Market
from repro.oracle_factory import GainCache, build_oracle
from repro.oracle_factory.factory import resolve_jobs

PARAMS = {"n_estimators": 4, "max_depth": 4}


@pytest.fixture(scope="module")
def dataset():
    return load_titanic(300, seed=0).prepare(seed=0)


@pytest.fixture(scope="module")
def bundles():
    return [FeatureBundle.of([0]), FeatureBundle.of([1, 2])]


class TestResolveJobs:
    def test_zero_and_none_mean_all_cores(self):
        import os

        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(None) == (os.cpu_count() or 1)

    def test_explicit_values_pass_through(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(-2) == 1


class TestBuildReport:
    def test_report_fields_and_dict(self, dataset, bundles, tmp_path):
        cache = GainCache(str(tmp_path))
        oracle, report = build_oracle(
            dataset, bundles, model_params=PARAMS, seed=0, cache=cache
        )
        assert report.n_bundles == len(bundles)
        assert report.elapsed > 0
        assert set(report.bundle_seconds) == {"0", "1,2"}
        assert all(s >= 0 for s in report.bundle_seconds.values())
        payload = report.to_dict()
        assert payload["courses_run"] == len(bundles) + 1
        assert payload["cache"] == {"hits": 0, "misses": len(bundles) + 1}
        assert "oracle build" in report.summary()
        # the oracle carries its report for CLI surfacing
        assert oracle.build_report is report

    def test_warm_report_timings_zero(self, dataset, bundles, tmp_path):
        cache = GainCache(str(tmp_path))
        build_oracle(dataset, bundles, model_params=PARAMS, seed=0, cache=cache)
        _, warm = build_oracle(
            dataset, bundles, model_params=PARAMS, seed=0, cache=cache
        )
        assert warm.courses_run == 0
        assert all(s == 0.0 for s in warm.bundle_seconds.values())

    def test_invalid_inputs_rejected(self, dataset, bundles):
        with pytest.raises(ValueError, match="at least one bundle"):
            build_oracle(dataset, [], model_params=PARAMS)
        with pytest.raises(ValueError, match="n_repeats"):
            build_oracle(dataset, bundles, model_params=PARAMS, n_repeats=0)
        with pytest.raises(ValueError, match="base_model"):
            build_oracle(dataset, bundles, base_model="svm")


class TestMarketIntegration:
    def test_for_dataset_accepts_jobs_and_cache(self, tmp_path):
        market = Market.for_dataset(
            "titanic",
            quick=True,
            seed=0,
            n_bundles=4,
            model_params={"n_estimators": 3, "max_depth": 3},
            jobs=1,
            cache=str(tmp_path),
        )
        assert len(market.oracle) >= 2
        report = market.oracle.build_report
        assert report.courses_run > 0
        # A second build with the same cache replays from disk.
        market2 = Market.for_dataset(
            "titanic",
            quick=True,
            seed=0,
            n_bundles=4,
            model_params={"n_estimators": 3, "max_depth": 3},
            jobs=1,
            cache=str(tmp_path),
        )
        assert market2.oracle.build_report.courses_run == 0
        assert market2.oracle.gains() == market.oracle.gains()
