"""Integration tests for the Market facade on a real (quick) dataset."""

import numpy as np
import pytest

from repro.market import LinearCost, Market, PerformanceOracle
from repro.market.bundle import FeatureBundle
from repro.market.pricing import ReservedPrice
from repro.market.config import MarketConfig


@pytest.fixture(scope="module")
def titanic_market():
    return Market.for_dataset(
        "titanic",
        base_model="random_forest",
        quick=True,
        seed=0,
        n_bundles=12,
        model_params={"n_estimators": 8, "max_depth": 6},
    )


class TestForDataset:
    def test_builds_complete_stack(self, titanic_market):
        market = titanic_market
        assert len(market.oracle) == 12
        assert market.config.target_gain is not None
        assert market.config.target_gain > 0
        assert set(market.oracle.bundles) == set(market.reserved_prices)

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            Market.for_dataset("mnist")

    def test_config_overrides_applied(self):
        market = Market(
            oracle=PerformanceOracle.from_gains({FeatureBundle.of([0]): 0.1}),
            reserved_prices={FeatureBundle.of([0]): ReservedPrice(1.0, 0.1)},
            config=MarketConfig(
                utility_rate=100.0, budget=5.0, initial_rate=2.0,
                initial_base=0.2, target_gain=0.1,
            ),
        )
        out = market.bargain(seed=0, config_overrides={"max_rounds": 3})
        assert out.n_rounds <= 3


class TestBargainVariants:
    def test_strategic_accepts_and_beats_baseline(self, titanic_market):
        strategic = titanic_market.bargain_many(6, base_seed=0)
        increase = titanic_market.bargain_many(
            6, base_seed=0, task="increase_price"
        )
        net_s = np.mean([o.net_profit for o in strategic if o.accepted])
        net_i = np.mean([o.net_profit for o in increase if o.accepted])
        assert net_s > net_i

    def test_random_bundle_fails_more(self, titanic_market):
        strategic = titanic_market.bargain_many(6, base_seed=1)
        random_b = titanic_market.bargain_many(6, base_seed=1, data="random_bundle")
        fails_s = sum(not o.accepted for o in strategic)
        fails_r = sum(not o.accepted for o in random_b)
        assert fails_r >= fails_s

    def test_costs_reduce_final_revenue(self, titanic_market):
        out = titanic_market.bargain(
            seed=0, cost_task=LinearCost(0.05), cost_data=LinearCost(0.05)
        )
        assert out.net_profit_after_cost < out.net_profit
        assert out.payment_after_cost < out.payment

    def test_imperfect_information_runs(self, titanic_market):
        out = titanic_market.bargain(
            seed=0,
            information="imperfect",
            config_overrides={"exploration_rounds": 15, "max_rounds": 120},
        )
        assert out.n_rounds > 15
        assert out.status in ("accepted", "failed", "max_rounds")

    def test_unknown_strategy_rejected(self, titanic_market):
        with pytest.raises(ValueError, match="unknown task strategy"):
            titanic_market.bargain(task="oracle_cheat")
        with pytest.raises(ValueError, match="information"):
            titanic_market.bargain(information="partial")

    def test_outcome_reserved_price_reporting(self, titanic_market):
        out = titanic_market.bargain(seed=2)
        if out.accepted:
            assert out.reserved_of_bundle is not None
            # Table 4's delta columns: final price should clear the floor.
            assert out.quote.rate >= out.reserved_of_bundle.rate - 1e-9

    def test_bargain_many_distinct_seeds(self, titanic_market):
        outs = titanic_market.bargain_many(5, base_seed=3)
        assert len({o.n_rounds for o in outs}) > 1
