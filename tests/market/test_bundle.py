"""Tests for feature bundles and catalogue generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.market import FeatureBundle, enumerate_bundles, sample_bundles


class TestFeatureBundle:
    def test_sorted_and_deduplicated(self):
        assert FeatureBundle.of([3, 1, 2]).indices == (1, 2, 3)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FeatureBundle((1, 1))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            FeatureBundle(())

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FeatureBundle((-1, 2))

    def test_container_protocol(self):
        b = FeatureBundle.of([0, 2])
        assert len(b) == 2 and b.size == 2
        assert 2 in b and 1 not in b
        assert list(b) == [0, 2]

    def test_union(self):
        assert FeatureBundle.of([0]).union(FeatureBundle.of([2])).indices == (0, 2)

    def test_hashable_and_equal(self):
        assert FeatureBundle.of([1, 2]) == FeatureBundle.of([2, 1])
        assert len({FeatureBundle.of([1, 2]), FeatureBundle.of([2, 1])}) == 1

    def test_label(self):
        assert FeatureBundle.of([0, 3]).label() == "{0,3}"


class TestEnumerateBundles:
    def test_counts_all_subsets(self):
        assert len(enumerate_bundles(3)) == 7  # 2^3 - 1

    def test_max_size(self):
        bundles = enumerate_bundles(4, max_size=2)
        assert len(bundles) == 4 + 6
        assert max(b.size for b in bundles) == 2

    def test_large_space_guarded(self):
        with pytest.raises(ValueError, match="16 features"):
            enumerate_bundles(20)

    def test_large_space_small_sizes_allowed(self):
        assert len(enumerate_bundles(20, max_size=1)) == 20


class TestSampleBundles:
    def test_distinct(self):
        bundles = sample_bundles(10, 15, rng=0)
        assert len({b.indices for b in bundles}) == len(bundles)

    def test_includes_full_bundle(self):
        bundles = sample_bundles(8, 10, rng=0, include_full=True)
        assert FeatureBundle.of(range(8)) in bundles

    def test_excludes_full_when_asked(self):
        bundles = sample_bundles(4, 5, rng=0, include_full=False, max_size=3)
        assert FeatureBundle.of(range(4)) not in bundles

    def test_deterministic(self):
        a = sample_bundles(12, 8, rng=7)
        b = sample_bundles(12, 8, rng=7)
        assert a == b

    def test_size_bounds_respected(self):
        bundles = sample_bundles(12, 20, rng=1, min_size=2, max_size=5, include_full=False)
        assert all(2 <= b.size <= 5 for b in bundles)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=1, max_value=12), seed=st.integers(0, 100))
def test_sampled_bundles_always_valid(n, seed):
    for bundle in sample_bundles(n, min(6, 2**n - 1), rng=seed):
        assert 1 <= bundle.size <= n
        assert all(0 <= i < n for i in bundle)
