"""Property-based tests: engine invariants over randomised markets.

Hypothesis generates random gain ladders, reserved-price schedules and
market constants; the invariants below must hold for *every* game the
engine can play.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.market import (
    BargainingEngine,
    FeatureBundle,
    MarketConfig,
    PerformanceOracle,
    ReservedPrice,
    StrategicDataParty,
    StrategicTaskParty,
)
from repro.utils import spawn

market_params = st.fixed_dictionaries(
    {
        "n_bundles": st.integers(min_value=2, max_value=12),
        "top_gain": st.floats(min_value=0.02, max_value=0.5),
        "utility_rate": st.floats(min_value=50.0, max_value=2000.0),
        "rate_floor": st.floats(min_value=1.0, max_value=8.0),
        "rate_span": st.floats(min_value=0.0, max_value=6.0),
        "base_floor": st.floats(min_value=0.1, max_value=1.5),
        "base_span": st.floats(min_value=0.0, max_value=1.0),
        "seed": st.integers(min_value=0, max_value=10_000),
    }
)


def build_game(params):
    n = params["n_bundles"]
    bundles = [FeatureBundle.of(range(i + 1)) for i in range(n)]
    gains, reserved = {}, {}
    for i, b in enumerate(bundles):
        q = (i + 1) / n
        gains[b] = params["top_gain"] * q
        reserved[b] = ReservedPrice(
            rate=params["rate_floor"] + params["rate_span"] * q,
            base=params["base_floor"] + params["base_span"] * q,
        )
    initial_rate = max(params["rate_floor"] * 1.05, 0.5)
    utility = max(params["utility_rate"], initial_rate * 3)
    initial_base = params["base_floor"] * 1.05
    budget = (initial_base + initial_rate * params["top_gain"]) * 3.0
    config = MarketConfig(
        utility_rate=utility,
        budget=budget,
        initial_rate=initial_rate,
        initial_base=initial_base,
        target_gain=params["top_gain"],
        eps_d=1e-3,
        eps_t=1e-3,
        n_price_samples=32,
        max_rounds=200,
    )
    oracle = PerformanceOracle.from_gains(gains)
    engine = BargainingEngine(
        StrategicTaskParty(config, list(gains.values()), rng=spawn(params["seed"], "t")),
        StrategicDataParty(gains, reserved, config),
        oracle,
        utility_rate=config.utility_rate,
        reserved_prices=reserved,
        max_rounds=config.max_rounds,
    )
    return engine, config, gains, reserved


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(params=market_params)
def test_engine_invariants_hold_for_any_market(params):
    engine, config, gains, reserved = build_game(params)
    outcome = engine.run()

    # 1. The game always terminates within the round cap.
    assert 1 <= outcome.n_rounds <= config.max_rounds
    assert outcome.status in ("accepted", "failed", "max_rounds")

    # 2. Round numbering is consecutive from 1.
    rounds = [r.round_number for r in outcome.history]
    assert rounds == list(range(1, len(rounds) + 1))

    for record in outcome.history:
        if record.bundle is None:
            continue
        # 3. Payments always respect the quote's bounds (Def. 2.3).
        assert record.quote.base - 1e-9 <= record.payment <= record.quote.cap + 1e-9
        # 4. Net profit satisfies the Eq. 3 identity.
        assert record.net_profit == pytest.approx(
            config.utility_rate * record.delta_g - record.payment
        )
        # 5. Every offered bundle was affordable under the round's quote.
        assert reserved[record.bundle].satisfied_by(record.quote)
        # 6. Every quote keeps the Eq. 5 equilibrium structure.
        assert record.quote.turning_point == pytest.approx(
            config.target_gain, rel=1e-9, abs=1e-9
        )

    if outcome.accepted:
        # 7. Accepted deals transact a real bundle at its oracle gain.
        assert outcome.bundle in gains
        assert outcome.delta_g == pytest.approx(gains[outcome.bundle])
        # 8. The buyer never pays above budget.
        assert outcome.payment <= config.budget + 1e-9


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(params=market_params)
def test_strategic_seller_never_triggers_case4(params):
    """A strategic seller cannot be walked away from via Case 4.

    The regression rule only fires when the current quote dominates the
    quote of an earlier better offer; under a dominating quote the
    strategic seller's affordable set contains everything it contained
    before, so its deterministic Eq. 4 selection cannot offer less.
    Hence task-party failures are impossible against a strategic seller
    — for ANY market the generator produces.
    """
    engine, config, gains, _ = build_game(params)
    outcome = engine.run()
    assert not (outcome.status == "failed" and outcome.terminated_by == "task_party")
