"""Tests for the bargaining engine over synthetic oracles."""

import numpy as np
import pytest

from repro.market import (
    BargainingEngine,
    FeatureBundle,
    LinearCost,
    MarketConfig,
    PerformanceOracle,
    ReservedPrice,
    StrategicDataParty,
    StrategicTaskParty,
)
from repro.market.strategies.baselines import RandomBundleDataParty
from repro.utils import spawn


def ladder_market(n_bundles=10, top_gain=0.2, seed=0):
    """A quality ladder: gains and reserved prices rise together."""
    rng = np.random.default_rng(seed)
    bundles = [FeatureBundle.of(range(i + 1)) for i in range(n_bundles)]
    gains = {}
    reserved = {}
    for i, b in enumerate(bundles):
        quality = (i + 1) / n_bundles
        gains[b] = top_gain * quality
        reserved[b] = ReservedPrice(
            rate=5.0 + 4.0 * quality + rng.uniform(0, 0.1),
            base=0.8 + 0.6 * quality + rng.uniform(0, 0.02),
        )
    config = MarketConfig(
        utility_rate=500.0,
        budget=6.0,
        initial_rate=5.6,
        initial_base=0.95,
        target_gain=top_gain,
        eps_d=1e-3,
        eps_t=1e-3,
        n_price_samples=64,
        max_rounds=400,
    )
    return bundles, gains, reserved, config


def build_engine(seed=0, data_cls=StrategicDataParty, **engine_kw):
    bundles, gains, reserved, config = ladder_market(seed=0)
    oracle = PerformanceOracle.from_gains(gains)
    task = StrategicTaskParty(config, list(gains.values()), rng=spawn(seed, "t"))
    if data_cls is StrategicDataParty:
        data = StrategicDataParty(gains, reserved, config)
    else:
        data = data_cls(gains, reserved, config, rng=spawn(seed, "d"))
    return BargainingEngine(
        task,
        data,
        oracle,
        utility_rate=config.utility_rate,
        reserved_prices=reserved,
        max_rounds=config.max_rounds,
        **engine_kw,
    )


class TestEngineConvergence:
    def test_strategic_reaches_the_top_of_the_ladder(self):
        outcome = build_engine(seed=3).run()
        assert outcome.accepted
        assert outcome.delta_g == pytest.approx(0.2)
        assert outcome.net_profit == pytest.approx(
            500.0 * 0.2 - outcome.payment
        )

    def test_final_quote_near_reserved_price(self):
        outcome = build_engine(seed=1).run()
        assert outcome.reserved_of_bundle is not None
        assert outcome.quote.rate >= outcome.reserved_of_bundle.rate - 1e-9
        assert outcome.quote.base >= outcome.reserved_of_bundle.base - 1e-9
        # Equilibrium targeting keeps the final rate close to the floor.
        assert outcome.quote.rate - outcome.reserved_of_bundle.rate < 3.0

    def test_payment_equals_cap_at_equilibrium(self):
        outcome = build_engine(seed=2).run()
        assert outcome.payment == pytest.approx(outcome.quote.cap, abs=1e-2)

    def test_history_rounds_are_consecutive(self):
        outcome = build_engine(seed=0).run()
        rounds = [r.round_number for r in outcome.history]
        assert rounds == list(range(1, len(rounds) + 1))

    def test_realized_gain_is_monotone_ish(self):
        """The offered gain ratchets up as prices escalate."""
        outcome = build_engine(seed=5).run()
        gains = [r.delta_g for r in outcome.history if np.isfinite(r.delta_g)]
        assert gains[-1] >= gains[0]

    def test_deterministic_given_seed(self):
        a = build_engine(seed=9).run()
        b = build_engine(seed=9).run()
        assert a.n_rounds == b.n_rounds
        assert a.payment == b.payment

    def test_max_rounds_failure(self):
        bundles, gains, reserved, config = ladder_market()
        # Unreachable target: nothing yields 0.5.
        config = config.with_overrides(target_gain=0.5, max_rounds=30, budget=20.0)
        oracle = PerformanceOracle.from_gains(gains)
        task = StrategicTaskParty(config, list(gains.values()), rng=spawn(0, "t"))
        data = StrategicDataParty(gains, reserved, config)
        outcome = BargainingEngine(
            task, data, oracle, utility_rate=config.utility_rate, max_rounds=30
        ).run()
        assert outcome.status == "max_rounds"
        assert not outcome.accepted

    def test_data_party_fail_on_unaffordable_market(self):
        bundles, gains, reserved, config = ladder_market()
        expensive = {b: ReservedPrice(rate=50.0, base=10.0) for b in bundles}
        oracle = PerformanceOracle.from_gains(gains)
        task = StrategicTaskParty(config, list(gains.values()), rng=spawn(0, "t"))
        data = StrategicDataParty(gains, expensive, config)
        outcome = BargainingEngine(
            task, data, oracle, utility_rate=config.utility_rate
        ).run()
        assert outcome.status == "failed"
        assert outcome.terminated_by == "data_party"
        assert outcome.n_rounds == 1

    def test_costs_accumulate_in_outcome(self):
        outcome = build_engine(
            seed=0, cost_task=LinearCost(0.01), cost_data=LinearCost(0.02)
        ).run()
        assert outcome.cost_task == pytest.approx(0.01 * outcome.n_rounds)
        assert outcome.cost_data == pytest.approx(0.02 * outcome.n_rounds)
        assert outcome.net_profit_after_cost < outcome.net_profit
        assert outcome.payment_after_cost < outcome.payment

    def test_random_bundle_fails_on_junk_offers(self):
        """A below-break-even bundle in the catalogue kills random sellers."""
        bundles, gains, reserved, config = ladder_market()
        junk = FeatureBundle.of([99])
        gains = {**gains, junk: 0.0005}  # below break-even ~0.0019
        reserved = {**reserved, junk: ReservedPrice(rate=5.0, base=0.8)}
        oracle = PerformanceOracle.from_gains(gains)
        failures = 0
        for seed in range(10):
            task = StrategicTaskParty(
                config, list(gains.values()), rng=spawn(seed, "t")
            )
            data = RandomBundleDataParty(gains, reserved, config, rng=spawn(seed, "d"))
            outcome = BargainingEngine(
                task, data, oracle,
                utility_rate=config.utility_rate, max_rounds=config.max_rounds,
            ).run()
            if not outcome.accepted:
                failures += 1
        assert failures >= 5

    def test_cost_aware_strategies_settle_earlier(self):
        bundles, gains, reserved, config = ladder_market()
        oracle = PerformanceOracle.from_gains(gains)
        heavy = LinearCost(0.5)
        task = StrategicTaskParty(
            config, list(gains.values()), cost_model=heavy, rng=spawn(4, "t")
        )
        data = StrategicDataParty(gains, reserved, config, cost_model=heavy)
        with_cost = BargainingEngine(
            task, data, oracle,
            utility_rate=config.utility_rate, cost_task=heavy, cost_data=heavy,
        ).run()
        without = build_engine(seed=4).run()
        assert with_cost.n_rounds <= without.n_rounds
