"""Tests for bargaining strategies over synthetic oracles (no VFL)."""

import numpy as np
import pytest

from repro.market import (
    FeatureBundle,
    MarketConfig,
    QuotedPrice,
    ReservedPrice,
    StrategicDataParty,
    StrategicTaskParty,
)
from repro.market.strategies.baselines import (
    IncreasePriceTaskParty,
    RandomBundleDataParty,
)
from repro.market.strategies.data_party import select_offer
from repro.market.termination import Decision
from repro.utils import spawn


def toy_market():
    """Three bundles: cheap/weak, mid, expensive/strong."""
    b1, b2, b3 = (
        FeatureBundle.of([0]),
        FeatureBundle.of([0, 1]),
        FeatureBundle.of([0, 1, 2]),
    )
    gains = {b1: 0.05, b2: 0.12, b3: 0.20}
    reserved = {
        b1: ReservedPrice(rate=5.0, base=0.8),
        b2: ReservedPrice(rate=7.0, base=1.0),
        b3: ReservedPrice(rate=9.0, base=1.3),
    }
    config = MarketConfig(
        utility_rate=500.0,
        budget=5.0,
        initial_rate=5.5,
        initial_base=0.9,
        target_gain=0.20,
        eps_d=1e-3,
        eps_t=1e-3,
        n_price_samples=64,
    )
    return gains, reserved, config


class TestSelectOffer:
    def test_picks_closest_below_turning_point(self):
        gains, _, _ = toy_market()
        bundle, gain = select_offer(gains, turning_point=0.15)
        assert gain == 0.12

    def test_all_overshoot_picks_smallest(self):
        gains, _, _ = toy_market()
        bundle, gain = select_offer(gains, turning_point=0.01)
        assert gain == 0.05

    def test_exact_match_preferred(self):
        gains, _, _ = toy_market()
        bundle, gain = select_offer(gains, turning_point=0.12)
        assert gain == 0.12

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            select_offer({}, 0.1)


class TestStrategicDataParty:
    def test_affordability_filter(self):
        gains, reserved, config = toy_market()
        party = StrategicDataParty(gains, reserved, config)
        cheap_quote = QuotedPrice(rate=5.5, base=0.9, cap=2.0)
        affordable = party.affordable(cheap_quote)
        assert set(affordable.values()) == {0.05}

    def test_case1_fail(self):
        gains, reserved, config = toy_market()
        party = StrategicDataParty(gains, reserved, config)
        response = party.respond(QuotedPrice(rate=1.0, base=0.1, cap=0.5), 1)
        assert response.decision is Decision.FAIL

    def test_case3_offers_best_below_tp(self):
        gains, reserved, config = toy_market()
        party = StrategicDataParty(gains, reserved, config)
        quote = QuotedPrice(rate=8.0, base=1.1, cap=1.1 + 8.0 * 0.20)
        response = party.respond(quote, 1)
        assert response.decision is Decision.CONTINUE
        assert gains[response.bundle] == 0.12  # best affordable below 0.20

    def test_case2_accepts_at_turning_point(self):
        gains, reserved, config = toy_market()
        party = StrategicDataParty(gains, reserved, config)
        quote = QuotedPrice(rate=10.0, base=1.5, cap=1.5 + 10.0 * 0.20)
        response = party.respond(quote, 1)
        assert response.decision is Decision.ACCEPT
        assert gains[response.bundle] == 0.20


class TestStrategicTaskParty:
    def test_initial_quote_satisfies_eq5(self):
        gains, _, config = toy_market()
        party = StrategicTaskParty(config, list(gains.values()), rng=spawn(0, "t"))
        q = party.initial_quote()
        assert q.turning_point == pytest.approx(0.20)
        assert q.rate == config.initial_rate
        assert q.base == config.initial_base

    def test_case5_accept(self):
        gains, _, config = toy_market()
        party = StrategicTaskParty(config, list(gains.values()), rng=spawn(0, "t"))
        q = party.initial_quote()
        decision = party.decide(q, 0.1995, 1)
        assert decision.decision is Decision.ACCEPT

    def test_case4_fail_on_regression_below_break_even(self):
        """A below-break-even offer fails only after better offers were seen."""
        gains, _, config = toy_market()
        party = StrategicTaskParty(config, list(gains.values()), rng=spawn(0, "t"))
        q = party.initial_quote()
        be = config.initial_base / (config.utility_rate - config.initial_rate)
        bundle = FeatureBundle.of([0])
        # Opening low offer: tolerated (no regression yet).
        party.observe(q, bundle, be / 2)
        assert party.decide(q, be / 2, 1).decision is Decision.CONTINUE
        # A good offer arrives, then the seller regresses below
        # break-even: the buyer walks away (Case 4).
        party.observe(q, bundle, 0.12)
        party.observe(q, bundle, be / 2)
        assert party.decide(q, be / 2, 3).decision is Decision.FAIL

    def test_case6_escalates_cap_and_keeps_eq5(self):
        gains, _, config = toy_market()
        party = StrategicTaskParty(config, list(gains.values()), rng=spawn(0, "t"))
        q = party.initial_quote()
        decision = party.decide(q, 0.05, 1)
        assert decision.decision is Decision.CONTINUE
        assert decision.quote.cap > q.cap
        assert decision.quote.turning_point == pytest.approx(0.20)
        assert decision.quote.rate >= config.initial_rate
        assert decision.quote.base >= config.initial_base - 1e-9

    def test_budget_exhaustion_accepts(self):
        gains, _, config = toy_market()
        # Budget exactly equals the opening cap: no escalation possible.
        config = config.with_overrides(budget=0.9 + 5.5 * 0.2)
        party = StrategicTaskParty(config, list(gains.values()), rng=spawn(0, "t"))
        decision = party.decide(party.initial_quote(), 0.05, 1)
        assert decision.decision is Decision.ACCEPT

    def test_opening_cap_above_budget_rejected(self):
        gains, _, config = toy_market()
        with pytest.raises(ValueError, match="budget"):
            StrategicTaskParty(
                config.with_overrides(budget=1.0), list(gains.values())
            )

    def test_target_quantile_used_when_no_target(self):
        gains, _, config = toy_market()
        config = config.with_overrides(target_gain=None, target_quantile=0.5)
        party = StrategicTaskParty(config, list(gains.values()), rng=spawn(0, "t"))
        assert party.target == pytest.approx(0.12)


class TestBaselines:
    def test_increase_price_inflates_all_components(self):
        gains, _, config = toy_market()
        party = IncreasePriceTaskParty(config, list(gains.values()), rng=spawn(0, "b"))
        q = party.initial_quote()
        decision = party.decide(q, 0.05, 1)
        assert decision.decision is Decision.CONTINUE
        new = decision.quote
        assert new.rate >= q.rate and new.base >= q.base and new.cap >= q.cap

    def test_increase_price_does_not_keep_eq5(self):
        gains, _, config = toy_market()
        party = IncreasePriceTaskParty(config, list(gains.values()), rng=spawn(1, "b"))
        q = party.initial_quote()
        quotes = []
        for r in range(10):
            decision = party.decide(q, 0.05, r + 1)
            q = decision.quote
            quotes.append(q.turning_point)
        assert any(abs(tp - 0.20) > 1e-6 for tp in quotes)

    def test_random_bundle_offers_affordable(self):
        gains, reserved, config = toy_market()
        party = RandomBundleDataParty(gains, reserved, config, rng=spawn(0, "r"))
        quote = QuotedPrice(rate=8.0, base=1.1, cap=2.8)
        for _ in range(20):
            response = party.respond(quote, 1)
            assert response.decision in (Decision.CONTINUE, Decision.ACCEPT)
            assert reserved[response.bundle].satisfied_by(quote)

    def test_random_bundle_case1(self):
        gains, reserved, config = toy_market()
        party = RandomBundleDataParty(gains, reserved, config, rng=spawn(0, "r"))
        assert party.respond(QuotedPrice(1.0, 0.1, 0.2), 1).decision is Decision.FAIL
