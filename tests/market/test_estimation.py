"""Tests for the online ΔG estimators (f and g, §3.5.1)."""

import numpy as np
import pytest

from repro.market import (
    DataGainEstimator,
    FeatureBundle,
    QuotedPrice,
    TaskGainEstimator,
)
from repro.utils import spawn


def synthetic_price_gain(rng, n=120):
    """ΔG grows with the turning point, saturating at 0.2."""
    quotes, gains = [], []
    for _ in range(n):
        rate = rng.uniform(5, 12)
        base = rng.uniform(0.8, 1.5)
        cap = base + rate * rng.uniform(0.01, 0.25)
        q = QuotedPrice(rate, base, cap)
        quotes.append(q)
        gains.append(min(q.turning_point, 0.2) * 0.9 + rng.normal(0, 0.005))
    return quotes, np.asarray(gains)


class TestTaskGainEstimator:
    def test_learns_price_to_gain_map(self):
        rng = spawn(0, "f")
        est = TaskGainEstimator(rng=rng, train_passes=6)
        quotes, gains = synthetic_price_gain(rng)
        for q, g in zip(quotes, gains):
            est.observe(q, g)
        assert est.mse_history[-1] < est.mse_history[2]
        assert est.mse_history[-1] < 0.003

    def test_prediction_tracks_turning_point(self):
        rng = spawn(1, "f")
        est = TaskGainEstimator(rng=rng, train_passes=6)
        quotes, gains = synthetic_price_gain(rng, n=150)
        for q, g in zip(quotes, gains):
            est.observe(q, g)
        low = QuotedPrice(8.0, 1.0, 1.0 + 8.0 * 0.05)
        high = QuotedPrice(8.0, 1.0, 1.0 + 8.0 * 0.18)
        pred_low, pred_high = est.predict([low, high])
        assert pred_high > pred_low

    def test_predicts_zeros_before_data(self):
        est = TaskGainEstimator(rng=spawn(2, "f"))
        np.testing.assert_array_equal(
            est.predict([QuotedPrice(8.0, 1.0, 2.0)]), [0.0]
        )

    def test_observation_count(self):
        est = TaskGainEstimator(rng=spawn(3, "f"))
        est.observe(QuotedPrice(8.0, 1.0, 2.0), 0.1)
        assert est.n_observations == 1

    def test_empty_predict_rejected(self):
        with pytest.raises(ValueError):
            TaskGainEstimator(rng=spawn(0, "f")).predict([])


class TestDataGainEstimator:
    def item_values(self, n_features=10, seed=0):
        rng = spawn(seed, "vals")
        return rng.uniform(0.0, 0.04, n_features)

    def test_learns_bundle_values(self):
        values = self.item_values()
        rng = spawn(0, "g")
        est = DataGainEstimator(10, rng=rng, train_passes=6)
        for _ in range(200):
            size = int(rng.integers(1, 6))
            bundle = FeatureBundle.of(rng.choice(10, size=size, replace=False))
            est.observe(bundle, float(values[list(bundle)].sum()))
        assert est.mse_history[-1] < est.mse_history[2]

    def test_ranks_strong_bundles_higher(self):
        values = self.item_values()
        rng = spawn(1, "g")
        est = DataGainEstimator(10, rng=rng, train_passes=6)
        for _ in range(250):
            size = int(rng.integers(1, 6))
            bundle = FeatureBundle.of(rng.choice(10, size=size, replace=False))
            est.observe(bundle, float(values[list(bundle)].sum()))
        weak = FeatureBundle.of([int(np.argmin(values))])
        strong = FeatureBundle.of(list(np.argsort(values)[-3:]))
        pred_weak, pred_strong = est.predict([weak, strong])
        assert pred_strong > pred_weak

    def test_predicts_zeros_before_data(self):
        est = DataGainEstimator(5, rng=spawn(2, "g"))
        np.testing.assert_array_equal(est.predict([FeatureBundle.of([0])]), [0.0])

    def test_mse_history_tracks_observations(self):
        est = DataGainEstimator(5, rng=spawn(3, "g"))
        for i in range(4):
            est.observe(FeatureBundle.of([i]), 0.01 * i)
        assert len(est.mse_history) == 4
