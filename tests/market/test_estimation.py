"""Tests for the online ΔG estimators (f and g, §3.5.1)."""

import numpy as np
import pytest

from repro.market import (
    DataGainEstimator,
    FeatureBundle,
    QuotedPrice,
    TaskGainEstimator,
)
from repro.utils import spawn


def synthetic_price_gain(rng, n=120):
    """ΔG grows with the turning point, saturating at 0.2."""
    quotes, gains = [], []
    for _ in range(n):
        rate = rng.uniform(5, 12)
        base = rng.uniform(0.8, 1.5)
        cap = base + rate * rng.uniform(0.01, 0.25)
        q = QuotedPrice(rate, base, cap)
        quotes.append(q)
        gains.append(min(q.turning_point, 0.2) * 0.9 + rng.normal(0, 0.005))
    return quotes, np.asarray(gains)


class TestTaskGainEstimator:
    def test_learns_price_to_gain_map(self):
        rng = spawn(0, "f")
        est = TaskGainEstimator(rng=rng, train_passes=6)
        quotes, gains = synthetic_price_gain(rng)
        for q, g in zip(quotes, gains):
            est.observe(q, g)
        assert est.mse_history[-1] < est.mse_history[2]
        assert est.mse_history[-1] < 0.003

    def test_prediction_tracks_turning_point(self):
        rng = spawn(1, "f")
        est = TaskGainEstimator(rng=rng, train_passes=6)
        quotes, gains = synthetic_price_gain(rng, n=150)
        for q, g in zip(quotes, gains):
            est.observe(q, g)
        low = QuotedPrice(8.0, 1.0, 1.0 + 8.0 * 0.05)
        high = QuotedPrice(8.0, 1.0, 1.0 + 8.0 * 0.18)
        pred_low, pred_high = est.predict([low, high])
        assert pred_high > pred_low

    def test_predicts_zeros_before_data(self):
        est = TaskGainEstimator(rng=spawn(2, "f"))
        np.testing.assert_array_equal(
            est.predict([QuotedPrice(8.0, 1.0, 2.0)]), [0.0]
        )

    def test_observation_count(self):
        est = TaskGainEstimator(rng=spawn(3, "f"))
        est.observe(QuotedPrice(8.0, 1.0, 2.0), 0.1)
        assert est.n_observations == 1

    def test_empty_predict_rejected(self):
        with pytest.raises(ValueError):
            TaskGainEstimator(rng=spawn(0, "f")).predict([])


class TestDataGainEstimator:
    def item_values(self, n_features=10, seed=0):
        rng = spawn(seed, "vals")
        return rng.uniform(0.0, 0.04, n_features)

    def test_learns_bundle_values(self):
        values = self.item_values()
        rng = spawn(0, "g")
        est = DataGainEstimator(10, rng=rng, train_passes=6)
        for _ in range(200):
            size = int(rng.integers(1, 6))
            bundle = FeatureBundle.of(rng.choice(10, size=size, replace=False))
            est.observe(bundle, float(values[list(bundle)].sum()))
        assert est.mse_history[-1] < est.mse_history[2]

    def test_ranks_strong_bundles_higher(self):
        values = self.item_values()
        rng = spawn(1, "g")
        est = DataGainEstimator(10, rng=rng, train_passes=6)
        for _ in range(250):
            size = int(rng.integers(1, 6))
            bundle = FeatureBundle.of(rng.choice(10, size=size, replace=False))
            est.observe(bundle, float(values[list(bundle)].sum()))
        weak = FeatureBundle.of([int(np.argmin(values))])
        strong = FeatureBundle.of(list(np.argsort(values)[-3:]))
        pred_weak, pred_strong = est.predict([weak, strong])
        assert pred_strong > pred_weak

    def test_predicts_zeros_before_data(self):
        est = DataGainEstimator(5, rng=spawn(2, "g"))
        np.testing.assert_array_equal(est.predict([FeatureBundle.of([0])]), [0.0])

    def test_mse_history_tracks_observations(self):
        est = DataGainEstimator(5, rng=spawn(3, "g"))
        for i in range(4):
            est.observe(FeatureBundle.of([i]), 0.01 * i)
        assert len(est.mse_history) == 4

    def test_bad_bundle_rejected_on_observe(self):
        est = DataGainEstimator(5, rng=spawn(4, "g"))
        with pytest.raises(ValueError, match="feature ids"):
            est.observe(FeatureBundle.of([7]), 0.01)


class _RebuildTaskEstimator:
    """The pre-incremental implementation: rebuild + re-normalise the
    whole replay buffer every round.  Kept as the semantic reference
    for the O(buffer growth) fast path."""

    def __init__(self, *, train_passes=8, rng=None):
        from repro.ml.nn.regressor import MLPRegressor

        self.model = MLPRegressor(
            4, (64, 32, 16), lr=5e-3, rng=spawn(rng, "task_estimator")
        )
        self.train_passes = train_passes
        self._quotes, self._gains, self.mse_history = [], [], []

    def observe(self, quote, delta_g):
        self._quotes.append((*quote.as_tuple(), quote.turning_point))
        self._gains.append(float(delta_g))
        ref = np.asarray(self._quotes, dtype=np.float64)
        mean, std = ref.mean(axis=0), ref.std(axis=0)
        std = np.where(std < 1e-9, 1.0, std)
        X = (ref - mean) / std
        y = np.asarray(self._gains)
        self.model.partial_fit(X, y, steps=self.train_passes)
        self.mse_history.append(self.model.mse(X, y))


class _RebuildDataEstimator:
    """Pre-incremental reference for the bundle estimator."""

    def __init__(self, n_features, *, train_passes=8, rng=None):
        from repro.ml.nn.regressor import SetEmbeddingRegressor

        self.model = SetEmbeddingRegressor(
            n_features, embed_dim=16, hidden=(64, 32, 16), lr=5e-3,
            rng=spawn(rng, "data_estimator"),
        )
        self.train_passes = train_passes
        self._bundles, self._gains, self.mse_history = [], [], []

    def observe(self, bundle, delta_g):
        self._bundles.append(bundle)
        self._gains.append(float(delta_g))
        sets = [list(b) for b in self._bundles]
        y = np.asarray(self._gains)
        self.model.partial_fit(sets, y, steps=self.train_passes)
        self.mse_history.append(self.model.mse(sets, y))


class TestIncrementalBufferEquivalence:
    """The incremental replay buffers must track the rebuild-everything
    reference bit for bit: same raw samples, same two-pass moments,
    same gradient trajectories."""

    def test_task_mse_history_matches_reference_exactly(self):
        rng = spawn(0, "equiv")
        fast = TaskGainEstimator(rng=9)
        ref = _RebuildTaskEstimator(rng=9)
        quotes, gains = synthetic_price_gain(rng, n=60)
        for q, g in zip(quotes, gains):
            fast.observe(q, g)
            ref.observe(q, g)
        assert fast.mse_history == ref.mse_history
        assert fast.n_observations == 60

    def test_task_predictions_match_reference_exactly(self):
        rng = spawn(1, "equiv")
        fast = TaskGainEstimator(rng=5)
        ref = _RebuildTaskEstimator(rng=5)
        quotes, gains = synthetic_price_gain(rng, n=40)
        for q, g in zip(quotes, gains):
            fast.observe(q, g)
            ref.observe(q, g)
        probe = quotes[:8]
        ref_arr = np.asarray(
            [(*q.as_tuple(), q.turning_point) for q in probe], dtype=np.float64
        )
        buf = np.asarray(ref._quotes, dtype=np.float64)
        mean, std = buf.mean(axis=0), buf.std(axis=0)
        std = np.where(std < 1e-9, 1.0, std)
        expected = ref.model.predict((ref_arr - mean) / std)
        np.testing.assert_array_equal(fast.predict(probe), expected)

    def test_task_large_offset_feature_normalised_correctly(self):
        """Large-magnitude, tiny-spread features must not lose their
        std to cancellation (the failure mode of running sum-of-squares
        moments)."""
        est = TaskGainEstimator(rng=2, train_passes=1)
        rng = spawn(5, "offset")
        for _ in range(30):
            base = 1.0e6 + float(rng.normal(0.0, 1e-4))
            est.observe(QuotedPrice(rate=8.0, base=base, cap=base + 1.0), 0.1)
        # std of the 'base' feature is ~1e-4, far above the 1e-9 fallback
        # threshold; the two-pass moment must find it.
        assert est._std[1] < 1.0e-2
        assert est._std[1] > 1.0e-9

    def test_data_mse_history_matches_reference_exactly(self):
        # No normalisation on the bundle path: trajectories are equal
        # bit for bit.
        rng = spawn(2, "equiv")
        fast = DataGainEstimator(10, rng=4)
        ref = _RebuildDataEstimator(10, rng=4)
        for _ in range(50):
            size = int(rng.integers(1, 5))
            bundle = FeatureBundle.of(rng.choice(10, size=size, replace=False))
            g = 0.01 * len(bundle) + float(rng.normal(0, 0.002))
            fast.observe(bundle, g)
            ref.observe(bundle, g)
        assert fast.mse_history == ref.mse_history

    def test_task_buffer_growth_beyond_initial_capacity(self):
        rng = spawn(3, "equiv")
        est = TaskGainEstimator(rng=1, train_passes=1)
        quotes, gains = synthetic_price_gain(rng, n=140)  # > 2x capacity 64
        for q, g in zip(quotes, gains):
            est.observe(q, g)
        assert est.n_observations == 140
        assert len(est.mse_history) == 140

    def test_data_buffer_growth_beyond_initial_capacity(self):
        rng = spawn(4, "equiv")
        est = DataGainEstimator(8, rng=1, train_passes=1)
        for i in range(140):
            est.observe(FeatureBundle.of([i % 8]), 0.01)
        assert est.n_observations == 140
