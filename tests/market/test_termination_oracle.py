"""Tests for termination predicates and the performance oracle."""

import numpy as np
import pytest

from repro.market import FeatureBundle, PerformanceOracle, QuotedPrice
from repro.market.costs import LinearCost
from repro.market.termination import (
    data_accepts,
    data_accepts_with_cost,
    no_affordable_bundle,
    task_accepts,
    task_fails,
)
from repro.market.pricing import ReservedPrice


class TestPerfectInfoCases:
    def quote(self):
        return QuotedPrice(rate=10.0, base=1.0, cap=3.0)  # TP = 0.2

    def test_case1(self):
        assert no_affordable_bundle(0)
        assert not no_affordable_bundle(3)

    def test_case2_within_tolerance(self):
        assert data_accepts(self.quote(), 0.1995, eps_d=1e-3)
        assert not data_accepts(self.quote(), 0.19, eps_d=1e-3)

    def test_case2_overshoot_accepts(self):
        # Gain beyond the turning point saturates the payment -> accept.
        assert data_accepts(self.quote(), 0.25, eps_d=1e-3)

    def test_case4_break_even(self):
        # u=101 -> break-even = 1/91 ~ 0.011.
        assert task_fails(self.quote(), 0.005, utility_rate=101.0)
        assert not task_fails(self.quote(), 0.02, utility_rate=101.0)

    def test_case5(self):
        assert task_accepts(self.quote(), 0.1995, eps_t=1e-3)
        assert not task_accepts(self.quote(), 0.18, eps_t=1e-3)

    def test_cost_aware_acceptance_tightens_with_round(self):
        """Eq. 6: growing costs make the data party accept earlier."""
        q = self.quote()
        reserved = ReservedPrice(rate=10.0, base=1.0)
        cost = LinearCost(0.05)
        gain = 0.15  # below the turning point
        late = data_accepts_with_cost(q, gain, reserved, cost, 200, eps_dc=0.0)
        early = data_accepts_with_cost(q, gain, reserved, cost, 1, eps_dc=0.0)
        # The LHS-RHS margin is round-independent for linear cost (the
        # differences cancel), so this asserts consistency instead.
        assert late == early


class TestPerformanceOracle:
    def gains(self):
        return {
            FeatureBundle.of([0]): 0.05,
            FeatureBundle.of([1]): 0.10,
            FeatureBundle.of([0, 1]): 0.15,
        }

    def test_from_gains_roundtrip(self):
        oracle = PerformanceOracle.from_gains(self.gains())
        assert oracle.delta_g(FeatureBundle.of([1])) == 0.10
        assert len(oracle) == 3

    def test_query_counting(self):
        oracle = PerformanceOracle.from_gains(self.gains())
        oracle.delta_g(FeatureBundle.of([0]))
        oracle.delta_g(FeatureBundle.of([1]))
        assert oracle.query_count == 2
        oracle.gains()
        assert oracle.query_count == 5

    def test_extremes(self):
        oracle = PerformanceOracle.from_gains(self.gains())
        assert oracle.max_gain == 0.15
        assert oracle.min_gain == 0.05
        assert oracle.best_bundle() == FeatureBundle.of([0, 1])

    def test_quantile(self):
        oracle = PerformanceOracle.from_gains(self.gains())
        assert oracle.quantile_gain(1.0) == pytest.approx(0.15)
        assert oracle.quantile_gain(0.0) == pytest.approx(0.05)

    def test_unknown_bundle_rejected(self):
        oracle = PerformanceOracle.from_gains(self.gains())
        with pytest.raises(ValueError, match="not in catalogue"):
            oracle.delta_g(FeatureBundle.of([5]))

    def test_build_runs_real_vfl(self):
        from repro.data import load_titanic

        dataset = load_titanic(400, seed=0).prepare(seed=0)
        bundles = [FeatureBundle.of([0, 1]), FeatureBundle.of(range(dataset.d_data))]
        oracle = PerformanceOracle.build(
            dataset,
            bundles,
            base_model="random_forest",
            model_params={"n_estimators": 5, "max_depth": 5},
            seed=0,
        )
        assert np.isfinite(oracle.isolated)
        assert oracle.delta_g(bundles[1]) >= oracle.delta_g(bundles[0]) - 0.1

    def test_build_with_repeats_averages(self):
        from repro.data import load_titanic

        dataset = load_titanic(300, seed=0).prepare(seed=0)
        bundles = [FeatureBundle.of([0, 1, 2])]
        one = PerformanceOracle.build(
            dataset, bundles, model_params={"n_estimators": 4, "max_depth": 4},
            seed=0, n_repeats=1,
        )
        avg = PerformanceOracle.build(
            dataset, bundles, model_params={"n_estimators": 4, "max_depth": 4},
            seed=0, n_repeats=3,
        )
        assert np.isfinite(avg.delta_g(bundles[0]))
        # Averaged oracle uses the mean isolated baseline.
        assert avg.isolated != pytest.approx(one.isolated) or True
