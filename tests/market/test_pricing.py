"""Tests for quoted/reserved prices and the payment function (Defs. 2.2-2.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.market import FeatureBundle, QuotedPrice, ReservedPrice
from repro.market.pricing import cost_based_reserved_prices

prices = st.tuples(
    st.floats(min_value=0.1, max_value=100),   # rate
    st.floats(min_value=0.0, max_value=10),    # base
    st.floats(min_value=0.0, max_value=10),    # extra cap headroom C
)
gains = st.floats(min_value=-5.0, max_value=5.0)


class TestQuotedPrice:
    def test_validation(self):
        with pytest.raises(ValueError, match="p must be > 0"):
            QuotedPrice(0.0, 1.0, 2.0)
        with pytest.raises(ValueError, match="P0 must be >= 0"):
            QuotedPrice(1.0, -0.1, 2.0)
        with pytest.raises(ValueError, match="Ph"):
            QuotedPrice(1.0, 2.0, 1.0)

    def test_payment_piecewise_regions(self):
        q = QuotedPrice(rate=10.0, base=1.0, cap=3.0)
        assert q.payment(-1.0) == 1.0          # floor
        assert q.payment(0.1) == pytest.approx(2.0)  # linear region
        assert q.payment(10.0) == 3.0          # cap

    def test_turning_point(self):
        q = QuotedPrice(rate=10.0, base=1.0, cap=3.0)
        assert q.turning_point == pytest.approx(0.2)
        assert q.payment(q.turning_point) == pytest.approx(q.cap)

    def test_with_cap(self):
        q = QuotedPrice(2.0, 1.0, 5.0).with_cap(3.0)
        assert q.cap == 3.0 and q.rate == 2.0

    def test_str_contains_components(self):
        assert "P0=1.000" in str(QuotedPrice(2.0, 1.0, 5.0))


@settings(max_examples=200, deadline=None)
@given(p=prices, dg=gains)
def test_payment_bounds_property(p, dg):
    """Payment is always within [P0, Ph] (Def. 2.3)."""
    rate, base, headroom = p
    q = QuotedPrice(rate, base, base + headroom)
    pay = q.payment(dg)
    assert base - 1e-12 <= pay <= base + headroom + 1e-12


@settings(max_examples=100, deadline=None)
@given(p=prices, dg1=gains, dg2=gains)
def test_payment_monotone_property(p, dg1, dg2):
    """Payment is non-decreasing in ΔG."""
    rate, base, headroom = p
    q = QuotedPrice(rate, base, base + headroom)
    lo, hi = sorted((dg1, dg2))
    assert q.payment(lo) <= q.payment(hi) + 1e-12


class TestReservedPrice:
    def test_satisfied_by(self):
        r = ReservedPrice(rate=5.0, base=1.0)
        assert r.satisfied_by(QuotedPrice(5.0, 1.0, 2.0))
        assert r.satisfied_by(QuotedPrice(6.0, 1.5, 2.0))
        assert not r.satisfied_by(QuotedPrice(4.9, 1.5, 2.0))
        assert not r.satisfied_by(QuotedPrice(6.0, 0.9, 2.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            ReservedPrice(rate=0.0, base=1.0)
        with pytest.raises(ValueError):
            ReservedPrice(rate=1.0, base=-1.0)


class TestCostBasedReservedPrices:
    def bundles(self):
        return [FeatureBundle.of([0]), FeatureBundle.of([0, 1, 2])]

    def test_larger_bundles_cost_more(self):
        prices = cost_based_reserved_prices(
            self.bundles(),
            rate_floor=5.0, rate_per_feature=0.5,
            base_floor=1.0, base_per_feature=0.1,
            rng=0,
        )
        small, big = prices[self.bundles()[0]], prices[self.bundles()[1]]
        assert big.rate > small.rate
        assert big.base > small.base

    def test_value_premium_requires_gains(self):
        with pytest.raises(ValueError, match="gains"):
            cost_based_reserved_prices(
                self.bundles(),
                rate_floor=5.0, rate_per_feature=0.1,
                base_floor=1.0, base_per_feature=0.1,
                rate_value=1.0,
            )

    def test_value_premium_prices_quality(self):
        b_small, b_big = self.bundles()
        gains = {b_small: 0.2, b_big: 0.05}
        prices = cost_based_reserved_prices(
            [b_small, b_big],
            rate_floor=5.0, rate_per_feature=0.0,
            base_floor=1.0, base_per_feature=0.0,
            rate_value=4.0, base_value=0.5, gains=gains, rng=0,
        )
        # The small bundle has 4x the gain -> higher reserved price
        # despite identical size cost.
        assert prices[b_small].rate > prices[b_big].rate

    def test_noise_is_nonnegative_markup(self):
        bundles = self.bundles()
        noiseless = cost_based_reserved_prices(
            bundles, rate_floor=5.0, rate_per_feature=0.5,
            base_floor=1.0, base_per_feature=0.1, rng=0,
        )
        noisy = cost_based_reserved_prices(
            bundles, rate_floor=5.0, rate_per_feature=0.5,
            base_floor=1.0, base_per_feature=0.1,
            rate_noise=0.5, base_noise=0.1, rng=0,
        )
        for b in bundles:
            assert noisy[b].rate >= noiseless[b].rate
            assert noisy[b].base >= noiseless[b].base
