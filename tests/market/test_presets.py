"""Tests for the per-dataset market presets (calibration invariants)."""

import pytest

from repro.market import MARKET_PRESETS, preset_for
from repro.market.pricing import QuotedPrice, ReservedPrice


class TestPresetLookups:
    def test_all_paper_datasets_present(self):
        assert set(MARKET_PRESETS) == {"titanic", "credit", "adult"}

    def test_lookup_case_insensitive(self):
        assert preset_for("TITANIC") is MARKET_PRESETS["titanic"]

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="no market preset"):
            preset_for("mnist")


@pytest.mark.parametrize("name", ["titanic", "credit", "adult"])
class TestPresetInvariants:
    def test_individual_rationality(self, name):
        config = preset_for(name).config
        assert config.utility_rate > config.initial_rate

    def test_budget_headroom(self, name):
        config = preset_for(name).config
        assert config.budget > config.initial_base

    def test_opening_quote_affords_cheapest_bundle(self, name):
        """The cheapest possible bundle must clear at the opening quote.

        Otherwise every game dies with Case 1 in round 1.  'Cheapest
        possible' = one feature, zero quality premium, zero noise.
        """
        preset = preset_for(name)
        params = preset.reserved_price_params
        cheapest = ReservedPrice(
            rate=params["rate_floor"] + params["rate_per_feature"],
            base=params["base_floor"] + params["base_per_feature"],
        )
        opening = QuotedPrice(
            rate=preset.config.initial_rate,
            base=preset.config.initial_base,
            cap=preset.config.budget,
        )
        assert cheapest.satisfied_by(opening), (
            f"{name}: opening quote cannot afford the cheapest bundle"
        )

    def test_quick_samples_bounded_by_full(self, name):
        preset = preset_for(name)
        assert preset.quick_n_samples <= preset.full_n_samples

    def test_paper_utility_rate_magnitudes(self, name):
        """The calibrated u values implied by the paper's Tables (DESIGN.md §6)."""
        expected = {"titanic": 1000.0, "credit": 550.0, "adult": 80.0}
        assert preset_for(name).config.utility_rate == expected[name]

    def test_tolerances_below_gain_scale(self, name):
        # eps must be far below the targeted gains or Case 2 fires on junk.
        config = preset_for(name).config
        typical_gain = {"titanic": 0.19, "credit": 0.04, "adult": 0.028}[name]
        assert config.eps_d < typical_gain / 10
        assert config.eps_t < typical_gain / 10
