"""Property-based hardening of the equilibrium layer (Theorem 3.1, Props. 3.1/3.2).

The population simulator leans on these invariants for every session it
schedules, so they are pinned over *randomly drawn* quotes rather than
the handful of examples in ``test_equilibrium.py``:

* :func:`equivalent_quote` preserves payment and net profit and lands
  on the Eq. 5 equilibrium criterion for any valid ``(quote, ΔG)`` —
  including large-magnitude (real-currency) quotes, where the old
  absolute ``1e-9`` cap slack spuriously rejected the turning point;
* the ε conversions of Props. 3.1/3.2 round-trip: the derived
  tolerance makes the cost-aware acceptance rules (Eqs. 6/7) agree
  with the ε-termination Cases 2/5 decision-for-decision, and the
  closed forms invert back to the cost tolerance.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.market import (
    QuotedPrice,
    ReservedPrice,
    epsilon_d_from_cost_tolerance,
    epsilon_t_from_cost_tolerance,
    equivalent_quote,
    is_equilibrium_price,
    task_net_profit,
)
from repro.market.costs import ConstantCost
from repro.market.termination import (
    data_accepts,
    data_accepts_with_cost,
    task_accepts,
    task_accepts_with_cost,
)

# Spans 9 orders of magnitude: unit-payment toy markets through
# cent-denominated real-currency quotes.
quote_scales = st.sampled_from([1.0, 1e3, 1e6, 1e9])


@st.composite
def quotes(draw, scale=None):
    if scale is None:
        scale = draw(quote_scales)
    rate = draw(st.floats(min_value=0.5, max_value=50))
    base = draw(st.floats(min_value=0.0, max_value=0.5)) * scale
    headroom = draw(st.floats(min_value=0.01, max_value=1.0)) * scale
    return QuotedPrice(rate=rate, base=base, cap=base + headroom)


class TestTheorem31Property:
    """equivalent_quote over random valid inputs, at every magnitude."""

    @settings(max_examples=300, deadline=None)
    @given(quote=quotes(), frac=st.floats(min_value=0.0, max_value=1.0))
    def test_outcome_preserving_and_equilibrium(self, quote, frac):
        dg = frac * quote.turning_point
        star = equivalent_quote(quote, dg)
        # Tolerances must scale with the quantities compared: the
        # arithmetic itself carries ~|x|·eps rounding error.
        pay_tol = 1e-9 * max(1.0, abs(quote.cap))
        assert star.cap <= quote.cap
        assert star.payment(dg) == pytest.approx(quote.payment(dg), abs=pay_tol)
        u = quote.rate + 5.0
        assert task_net_profit(star, dg, u) == pytest.approx(
            task_net_profit(quote, dg, u), abs=pay_tol
        )
        tp_tol = 1e-9 * max(1.0, abs(quote.cap)) / quote.rate
        assert is_equilibrium_price(star, dg, tolerance=tp_tol)

    @settings(max_examples=300, deadline=None)
    @given(quote=quotes())
    def test_turning_point_is_always_admissible(self, quote):
        """ΔG = the quote's own turning point must never be rejected.

        Regression for the absolute ``1e-9`` cap slack:
        ``base + rate * ((cap - base) / rate)`` overshoots ``cap`` by
        up to ``~cap * eps``, which exceeds any absolute slack once
        caps reach ~1e7.
        """
        star = equivalent_quote(quote, quote.turning_point)
        assert star.cap <= quote.cap

    def test_large_magnitude_regression(self):
        """A concrete quote the pre-fix absolute slack rejected."""
        quote = QuotedPrice(
            rate=8.769119974722473,
            base=19884246356.571533,
            cap=112301707953.58179,
        )
        tp = quote.turning_point
        # The raw transform overshoots the cap by far more than the old
        # absolute slack allowed...
        assert quote.base + quote.rate * tp > quote.cap + 1e-9
        # ...yet Theorem 3.1 applies: the transformed quote exists and
        # preserves the outcome exactly (cap clamp).
        star = equivalent_quote(quote, tp)
        assert star.cap == quote.cap
        assert star.payment(tp) == quote.payment(tp)

    def test_beyond_turning_point_still_rejected(self):
        """The relative slack must not let genuinely invalid gains through."""
        quote = QuotedPrice(rate=10.0, base=1.0, cap=2.0)  # TP = 0.1
        with pytest.raises(ValueError, match="cap"):
            equivalent_quote(quote, 0.2)
        big = QuotedPrice(rate=10.0, base=1e9, cap=1e9 + 2.0)
        # At |cap| ~ 1e9 the slack is ~1.0, so the overshoot must beat
        # it by a real margin, not a rounding one.
        with pytest.raises(ValueError, match="cap"):
            equivalent_quote(big, big.turning_point * 3.0)


class TestProposition32RoundTrip:
    """ε_t = ε_tc / (u − p): decision equivalence and inversion."""

    @settings(max_examples=300, deadline=None)
    @given(
        quote=quotes(scale=1.0),
        frac=st.floats(min_value=0.0, max_value=1.3),
        eps_tc=st.floats(min_value=0.0, max_value=2.0),
        u_margin=st.floats(min_value=0.5, max_value=20.0),
        cost=st.floats(min_value=0.0, max_value=3.0),
        round_number=st.integers(min_value=1, max_value=400),
    )
    def test_decision_equivalence(self, quote, frac, eps_tc, u_margin, cost,
                                  round_number):
        u = quote.rate + u_margin
        dg = frac * quote.turning_point
        eps_t = epsilon_t_from_cost_tolerance(eps_tc, u, quote.rate)
        # Skip draws within float rounding of the decision boundary —
        # the two forms are algebraically identical, not bitwise.
        margin = (u - quote.rate) * (dg - quote.turning_point) + eps_tc
        assume(abs(margin) > 1e-9)
        assert task_accepts_with_cost(
            quote, dg, u, ConstantCost(cost), round_number, eps_tc
        ) == task_accepts(quote, dg, eps_t)

    @settings(max_examples=200, deadline=None)
    @given(
        eps_t=st.floats(min_value=0.0, max_value=5.0),
        rate=st.floats(min_value=0.5, max_value=50.0),
        u_margin=st.floats(min_value=0.5, max_value=20.0),
    )
    def test_inversion(self, eps_t, rate, u_margin):
        """ε_t -> ε_tc -> ε_t is the identity (up to rounding)."""
        u = rate + u_margin
        eps_tc = eps_t * (u - rate)
        back = epsilon_t_from_cost_tolerance(eps_tc, u, rate)
        assert back == pytest.approx(eps_t, rel=1e-12, abs=1e-15)


class TestProposition31RoundTrip:
    """ε_d from ε_dc: decision equivalence and inversion."""

    @settings(max_examples=300, deadline=None)
    @given(
        quote=quotes(scale=1.0),
        frac=st.floats(min_value=0.0, max_value=1.0),
        eps_dc=st.floats(min_value=0.0, max_value=2.0),
        r_rate=st.floats(min_value=0.1, max_value=60.0),
        r_base=st.floats(min_value=0.0, max_value=4.0),
        cost=st.floats(min_value=0.0, max_value=3.0),
        round_number=st.integers(min_value=1, max_value=400),
    )
    def test_decision_equivalence(self, quote, frac, eps_dc, r_rate, r_base,
                                  cost, round_number):
        reserved = ReservedPrice(rate=r_rate, base=r_base)
        dg = frac * quote.turning_point
        eps_d = epsilon_d_from_cost_tolerance(eps_dc, quote, reserved)
        margin = (quote.base + quote.rate * dg) - (
            max(reserved.base, quote.base)
            + max(reserved.rate, quote.rate) * quote.turning_point
            - eps_dc
        )
        assume(abs(margin) > 1e-9)
        assert data_accepts_with_cost(
            quote, dg, reserved, ConstantCost(cost), round_number, eps_dc
        ) == data_accepts(quote, dg, eps_d)

    @settings(max_examples=200, deadline=None)
    @given(
        quote=quotes(scale=1.0),
        r_rate=st.floats(min_value=0.1, max_value=60.0),
        r_base=st.floats(min_value=0.0, max_value=4.0),
        eps_d=st.floats(min_value=0.0, max_value=2.0),
    )
    def test_inversion(self, quote, r_rate, r_base, eps_d):
        """ε_d -> ε_dc -> ε_d is the identity where ε_dc is valid."""
        reserved = ReservedPrice(rate=r_rate, base=r_base)
        conservative_next = (
            max(reserved.base, quote.base)
            + max(reserved.rate, quote.rate) * quote.turning_point
        )
        eps_dc = eps_d * quote.rate + (conservative_next - quote.cap)
        assume(eps_dc >= 0)
        back = epsilon_d_from_cost_tolerance(eps_dc, quote, reserved)
        assert back == pytest.approx(eps_d, rel=1e-9, abs=1e-9)
