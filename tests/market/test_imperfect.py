"""Tests for the imperfect-information strategies (§3.5) on synthetic ladders."""

import numpy as np
import pytest

from repro.market import (
    BargainingEngine,
    FeatureBundle,
    ImperfectDataParty,
    ImperfectTaskParty,
    MarketConfig,
    PerformanceOracle,
    QuotedPrice,
    ReservedPrice,
)
from repro.market.termination import Decision
from repro.utils import spawn


def ladder(n=10, top_gain=0.2, seed=0):
    rng = np.random.default_rng(seed)
    bundles = [FeatureBundle.of(range(i + 1)) for i in range(n)]
    gains, reserved = {}, {}
    for i, b in enumerate(bundles):
        quality = (i + 1) / n
        gains[b] = top_gain * quality
        reserved[b] = ReservedPrice(
            rate=5.0 + 4.0 * quality + rng.uniform(0, 0.1),
            base=0.8 + 0.6 * quality + rng.uniform(0, 0.02),
        )
    config = MarketConfig(
        utility_rate=500.0,
        budget=6.0,
        initial_rate=5.6,
        initial_base=0.95,
        target_gain=top_gain,
        eps_d=5e-3,
        eps_t=5e-3,
        n_price_samples=48,
        max_rounds=300,
        exploration_rounds=40,
    )
    return bundles, gains, reserved, config


class TestImperfectTaskParty:
    def test_needs_explicit_target(self):
        _, _, _, config = ladder()
        with pytest.raises(ValueError, match="target"):
            ImperfectTaskParty(config.with_overrides(target_gain=None), rng=0)

    def test_explores_without_terminating(self):
        _, _, _, config = ladder()
        party = ImperfectTaskParty(config, rng=spawn(0, "t"))
        q = party.initial_quote()
        # Below break-even would normally fail; exploration ignores it.
        decision = party.decide(q, 0.00001, round_number=5)
        assert decision.decision is Decision.CONTINUE

    def test_terminates_after_exploration(self):
        _, _, _, config = ladder()
        party = ImperfectTaskParty(config, rng=spawn(0, "t"))
        q = party.initial_quote()
        bundle = FeatureBundle.of([0])
        # A good offer was seen; the regressed junk offer now fails
        # Case IV once exploration is over.
        party.observe(q, bundle, 0.15)
        party.observe(q, bundle, 0.00001)
        decision = party.decide(q, 0.00001, round_number=100)
        assert decision.decision is Decision.FAIL

    def test_accepts_near_turning_point_after_exploration(self):
        _, _, _, config = ladder()
        party = ImperfectTaskParty(config, rng=spawn(0, "t"))
        q = party.initial_quote()
        decision = party.decide(q, q.turning_point, round_number=100)
        assert decision.decision is Decision.ACCEPT

    def test_estimator_observes(self):
        _, _, _, config = ladder()
        party = ImperfectTaskParty(config, rng=spawn(0, "t"))
        party.observe(party.initial_quote(), FeatureBundle.of([0]), 0.05)
        assert party.estimator.n_observations == 1


class TestImperfectDataParty:
    def test_exploration_keeps_game_alive_when_unaffordable(self):
        bundles, gains, reserved, config = ladder()
        party = ImperfectDataParty(bundles, reserved, config, 10, rng=spawn(0, "d"))
        response = party.respond(QuotedPrice(1.0, 0.01, 0.02), round_number=3)
        assert response.decision is Decision.CONTINUE

    def test_fails_when_unaffordable_after_exploration(self):
        bundles, gains, reserved, config = ladder()
        party = ImperfectDataParty(bundles, reserved, config, 10, rng=spawn(0, "d"))
        response = party.respond(QuotedPrice(1.0, 0.01, 0.02), round_number=100)
        assert response.decision is Decision.FAIL

    def test_exploration_offers_random_affordable(self):
        bundles, gains, reserved, config = ladder()
        party = ImperfectDataParty(bundles, reserved, config, 10, rng=spawn(0, "d"))
        quote = QuotedPrice(9.5, 1.5, 4.0)
        seen = {party.respond(quote, 2).bundle for _ in range(30)}
        assert len(seen) > 3  # random exploration, not a fixed pick


class TestImperfectBargainingEndToEnd:
    def run_game(self, seed):
        bundles, gains, reserved, config = ladder(seed=0)
        oracle = PerformanceOracle.from_gains(gains)
        task = ImperfectTaskParty(config, rng=spawn(seed, "task"))
        data = ImperfectDataParty(
            bundles, reserved, config, n_features=10, rng=spawn(seed, "data")
        )
        engine = BargainingEngine(
            task, data, oracle,
            utility_rate=config.utility_rate,
            reserved_prices=reserved,
            max_rounds=config.max_rounds,
        )
        return engine.run(), task, data

    def test_converges_to_reasonable_outcome(self):
        outcome, task, data = self.run_game(seed=1)
        assert outcome.accepted
        assert outcome.n_rounds > 40  # at least the exploration window
        # Settlements under imperfect information are noisy (the paper's
        # Table 4 shows large stds); require a sane, profitable landing.
        assert outcome.delta_g >= 0.04
        assert outcome.net_profit > 0

    def test_estimators_trained_during_bargaining(self):
        outcome, task, data = self.run_game(seed=2)
        assert task.estimator.n_observations >= 40
        assert data.estimator.n_observations >= 40
        # Learning converged: buffer MSE is small relative to gains^2.
        assert task.estimator.mse_history[-1] < 0.01
        assert data.estimator.mse_history[-1] < 0.01

    def test_comparable_to_perfect_information(self):
        """Imperfect payoff should be within a reasonable band of perfect."""
        from repro.market import StrategicDataParty, StrategicTaskParty

        bundles, gains, reserved, config = ladder(seed=0)
        oracle = PerformanceOracle.from_gains(gains)
        perfect = BargainingEngine(
            StrategicTaskParty(config, list(gains.values()), rng=spawn(0, "t")),
            StrategicDataParty(gains, reserved, config),
            oracle,
            utility_rate=config.utility_rate,
            max_rounds=config.max_rounds,
        ).run()
        imperfect, _, _ = self.run_game(seed=3)
        assert perfect.accepted and imperfect.accepted
        assert imperfect.net_profit >= 0.4 * perfect.net_profit
