"""Integration: auditing a real bargaining outcome end to end."""

import pytest

from repro.market import Market, TrustedEvaluator, under_report


@pytest.fixture(scope="module")
def market_and_evaluator():
    market = Market.for_dataset(
        "titanic",
        base_model="random_forest",
        quick=True,
        seed=6,
        n_bundles=10,
        model_params={"n_estimators": 10, "max_depth": 6},
    )
    evaluator = TrustedEvaluator(
        market.dataset,
        base_model="random_forest",
        model_params={"n_estimators": 10, "max_depth": 6},
        n_repeats=4,
        seed=6,
    )
    return market, evaluator


class TestOutcomeAuditing:
    def test_honest_settlement_passes_audit(self, market_and_evaluator):
        market, evaluator = market_and_evaluator
        outcome = market.bargain(seed=0)
        if not outcome.accepted:
            pytest.skip("no transaction this seed")
        result = evaluator.audit(outcome.bundle, outcome.delta_g)
        assert result.verified, (
            f"honest report flagged: reported {outcome.delta_g:.4f} vs "
            f"measured {result.measured_mean:.4f}±{result.measured_std:.4f}"
        )

    def test_fraudulent_settlement_flagged(self, market_and_evaluator):
        market, evaluator = market_and_evaluator
        outcome = market.bargain(seed=1)
        if not outcome.accepted:
            pytest.skip("no transaction this seed")
        fraud = under_report(outcome.delta_g, fraction=0.0)
        result = evaluator.audit(outcome.bundle, fraud)
        assert not result.verified

    def test_fraud_would_have_cut_the_payment(self, market_and_evaluator):
        """The economic motive the audit exists to block (paper §6)."""
        market, _ = market_and_evaluator
        outcome = market.bargain(seed=2)
        if not outcome.accepted:
            pytest.skip("no transaction this seed")
        honest_payment = outcome.quote.payment(outcome.delta_g)
        fraud_payment = outcome.quote.payment(under_report(outcome.delta_g, 0.2))
        assert fraud_payment < honest_payment
