"""EngineState checkpoint wire format: round-trips and replay identity.

The distributed jobs subsystem ships in-flight sessions between
processes as ``EngineState.to_dict()`` payloads.  Two contracts matter:

* the dict form round-trips losslessly (``from_dict(to_dict(s))``
  serialises — and digests — identically, including NaN ``delta_g``
  fields of failed rounds);
* a session restored from a checkpoint resumes to a **bit-identical
  remaining trace**: replaying a fresh engine to the checkpoint round
  and continuing produces exactly the rounds the original engine would
  have produced (the Hypothesis property below drives this across
  strategy/cost registrations and random mid-game rounds).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.market.bundle import FeatureBundle
from repro.market.engine import EngineState, RoundRecord
from repro.market.pricing import QuotedPrice, ReservedPrice
from repro.market.termination import Decision
from repro.service import MarketPool, MarketSpec, SessionManager, SessionSpec

MARKET = MarketSpec(dataset="synthetic", seed=7)
POOL = MarketPool()


def _manager() -> SessionManager:
    return SessionManager(pool=POOL)


class TestDictRoundTrip:
    def test_quote_round_trip(self):
        quote = QuotedPrice(rate=6.25, base=0.953, cap=2.1875)
        assert QuotedPrice.from_dict(quote.to_dict()) == quote

    def test_reserved_round_trip(self):
        reserved = ReservedPrice(rate=5.5, base=0.875)
        assert ReservedPrice.from_dict(reserved.to_dict()) == reserved

    def test_nan_delta_g_survives(self):
        """Failed rounds carry NaN; canonical JSON cannot — the wire
        format spells it out and the decoder restores a real NaN."""
        record = RoundRecord(
            round_number=3,
            quote=QuotedPrice(6.0, 1.0, 2.0),
            bundle=None,
            delta_g=float("nan"),
            payment=0.0,
            net_profit=0.0,
            cost_task=0.5,
            cost_data=0.25,
            data_decision=Decision.FAIL,
            task_decision=None,
        )
        payload = record.to_dict()
        assert payload["delta_g"] == "nan"
        back = RoundRecord.from_dict(payload)
        assert math.isnan(back.delta_g)
        assert back.to_dict() == payload

    def test_state_is_canonically_digestable(self):
        from repro.utils.canonical import content_digest

        manager = _manager()
        sid = manager.open_session(SessionSpec(market=MARKET, seed=0))
        manager.step(sid, rounds=2)
        state_dict = manager.checkpoint(sid)["state"]
        # canonical_json must accept the payload (no NaN leaks through)
        # and the digest must be reproducible from the plain dict alone.
        assert content_digest(state_dict) == content_digest(
            EngineState.from_dict(state_dict).to_dict()
        )

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="format version"):
            EngineState.from_dict({"version": 99, "round_number": 0,
                                   "quote": {}, "history": [], "outcome": None})

    def test_bundle_and_decisions_round_trip(self):
        record = RoundRecord(
            round_number=1,
            quote=QuotedPrice(6.0, 1.0, 2.0),
            bundle=FeatureBundle.of((4, 1, 9)),
            delta_g=0.125,
            payment=1.75,
            net_profit=60.75,
            cost_task=0.0,
            cost_data=0.0,
            data_decision=Decision.CONTINUE,
            task_decision=Decision.ACCEPT,
        )
        back = RoundRecord.from_dict(record.to_dict())
        assert back == record
        assert back.bundle.indices == (1, 4, 9)


# Strategy/cost registrations the property sweeps across.  The pairs
# are the registered perfect-information combinations plus the
# imperfect-information setting (which forces its own pair).
_PAIRS = st.sampled_from([
    ("strategic", "strategic", "perfect"),
    ("increase_price", "strategic", "perfect"),
    ("strategic", "random_bundle", "perfect"),
    ("increase_price", "random_bundle", "perfect"),
    ("strategic", "strategic", "imperfect"),
])
_COSTS = st.sampled_from([
    None,
    ("constant", 0.05),
    ("linear", 0.01),
    ("exponential", 1.005),
])


class TestReplayIdentity:
    @settings(max_examples=20, deadline=None)
    @given(
        pair=_PAIRS,
        cost=_COSTS,
        seed=st.integers(min_value=0, max_value=2**16),
        rounds=st.integers(min_value=0, max_value=30),
    )
    def test_restored_state_resumes_bit_identical(self, pair, cost, seed, rounds):
        """from_dict(to_dict(state)) + replay = the same remaining trace."""
        task, data, information = pair
        spec = SessionSpec(
            market=MARKET,
            task=task,
            data=data,
            information=information,
            seed=seed,
            cost_task=cost,
            cost_data=cost,
            config_overrides={"max_rounds": 60},
        )
        source = _manager()
        sid = source.open_session(spec)
        source.step(sid, rounds=rounds) if rounds else None
        checkpoint = source.checkpoint(sid)

        # The state dict round-trips losslessly.
        state = EngineState.from_dict(checkpoint["state"])
        assert state.to_dict() == checkpoint["state"]
        assert state.digest() == checkpoint["digest"]

        # Restoring into another manager resumes the exact same game:
        # play both to termination and compare the full record trails.
        target = _manager()
        rid = target.restore(checkpoint)
        source.run(sid)
        target.run(rid)
        assert (
            source.checkpoint(sid)["digest"] == target.checkpoint(rid)["digest"]
        )
        original = source.outcome(sid)
        restored = target.outcome(rid)
        assert restored.status == original.status
        assert restored.n_rounds == original.n_rounds
        assert restored.payment == original.payment
        assert len(restored.history) == len(original.history)
