"""Tests for the §6 future-work extensions: auditing and learned offers."""

import numpy as np
import pytest

from repro.data import load_titanic
from repro.market import (
    BargainingEngine,
    FeatureBundle,
    LearnedTaskParty,
    MarketConfig,
    PerformanceOracle,
    ReservedPrice,
    StrategicDataParty,
    StrategicTaskParty,
    TrustedEvaluator,
    under_report,
)
from repro.utils import spawn


@pytest.fixture(scope="module")
def audit_setting():
    dataset = load_titanic(800, seed=0).prepare(seed=0)
    evaluator = TrustedEvaluator(
        dataset,
        base_model="random_forest",
        model_params={"n_estimators": 15, "max_depth": 6},
        n_repeats=4,
        seed=0,
    )
    bundle = FeatureBundle.of(range(dataset.d_data))
    return evaluator, bundle


class TestTrustedEvaluator:
    def test_honest_report_verified(self, audit_setting):
        evaluator, bundle = audit_setting
        mean, _ = evaluator.measure(bundle)
        result = evaluator.audit(bundle, mean)
        assert result.verified
        assert abs(result.discrepancy) < 1e-9

    def test_under_reporting_detected(self, audit_setting):
        evaluator, bundle = audit_setting
        mean, std = evaluator.measure(bundle)
        # Report a fraction small enough to sit > z_threshold sigmas
        # below the measurement (training stochasticity is real, so the
        # evaluator can only police fraud beyond the noise floor).
        dishonest = under_report(mean, fraction=0.0)
        result = evaluator.audit(bundle, dishonest)
        assert not result.verified
        assert result.discrepancy < 0

    def test_mild_noise_tolerated(self, audit_setting):
        """Reports within training stochasticity must not be flagged."""
        evaluator, bundle = audit_setting
        mean, std = evaluator.measure(bundle)
        wobble = mean - 0.5 * max(std, evaluator.min_tolerance)
        assert evaluator.audit(bundle, wobble).verified

    def test_over_reporting_not_policed(self, audit_setting):
        # Over-reports raise the reporter's own payment; one-sided test.
        evaluator, bundle = audit_setting
        mean, _ = evaluator.measure(bundle)
        assert evaluator.audit(bundle, mean * 2).verified

    def test_measurement_cached(self, audit_setting):
        evaluator, bundle = audit_setting
        first = evaluator.measure(bundle)
        second = evaluator.measure(bundle)
        assert first == second

    def test_under_report_validation(self):
        with pytest.raises(ValueError):
            under_report(0.1, fraction=1.5)

    def test_needs_two_repeats(self, audit_setting):
        evaluator, _ = audit_setting
        with pytest.raises(ValueError, match=">= 2"):
            TrustedEvaluator(evaluator.dataset, n_repeats=1)


def ladder_market(seed=0):
    rng = np.random.default_rng(seed)
    bundles = [FeatureBundle.of(range(i + 1)) for i in range(10)]
    gains, reserved = {}, {}
    for i, b in enumerate(bundles):
        q = (i + 1) / 10
        gains[b] = 0.2 * q
        reserved[b] = ReservedPrice(
            rate=5.0 + 4.0 * q + rng.uniform(0, 0.1),
            base=0.8 + 0.6 * q + rng.uniform(0, 0.02),
        )
    config = MarketConfig(
        utility_rate=500.0, budget=6.0, initial_rate=5.6, initial_base=0.95,
        target_gain=0.2, eps_d=1e-3, eps_t=1e-3, n_price_samples=64, max_rounds=400,
    )
    return gains, reserved, config


class TestLearnedTaskParty:
    def run(self, task_cls, seed):
        gains, reserved, config = ladder_market()
        oracle = PerformanceOracle.from_gains(gains)
        task = task_cls(config, list(gains.values()), rng=spawn(seed, "t"))
        data = StrategicDataParty(gains, reserved, config)
        return BargainingEngine(
            task, data, oracle,
            utility_rate=config.utility_rate,
            reserved_prices=reserved,
            max_rounds=config.max_rounds,
        ).run()

    def test_reaches_agreement(self):
        outcome = self.run(LearnedTaskParty, seed=0)
        assert outcome.accepted
        assert outcome.delta_g == pytest.approx(0.2)

    def test_quotes_remain_eq5_consistent(self):
        outcome = self.run(LearnedTaskParty, seed=1)
        for record in outcome.history:
            assert record.quote.turning_point == pytest.approx(0.2, abs=1e-9)

    def test_profit_comparable_to_strategic(self):
        learned = [self.run(LearnedTaskParty, seed=s) for s in range(5)]
        strategic = [self.run(StrategicTaskParty, seed=s) for s in range(5)]
        net_l = np.mean([o.net_profit for o in learned if o.accepted])
        net_s = np.mean([o.net_profit for o in strategic if o.accepted])
        assert net_l >= 0.9 * net_s

    def test_bandit_state_updates(self):
        gains, reserved, config = ladder_market()
        party = LearnedTaskParty(config, list(gains.values()), rng=spawn(3, "t"))
        quote = party.initial_quote()
        bundle = FeatureBundle.of([0])
        party.observe(quote, bundle, 0.02)
        decision = party.decide(quote, 0.02, 1)
        assert decision.decision.value == "continue"
        party.observe(decision.quote, bundle, 0.04)
        assert party._arm_count.sum() >= 1

    def test_arm_validation(self):
        gains, _, config = ladder_market()
        with pytest.raises(ValueError, match="fractions"):
            LearnedTaskParty(config, list(gains.values()), arms=(0.0, 2.0))
