"""Tests for Theorem 3.1, Lemma 3.1 and Propositions 3.1-3.2.

These are the paper's theory results made executable; the property
tests check them over randomly drawn prices and gains.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.market import (
    QuotedPrice,
    ReservedPrice,
    epsilon_d_from_cost_tolerance,
    epsilon_t_from_cost_tolerance,
    equivalent_quote,
    is_equilibrium_price,
    select_dominant_quote,
    task_net_profit,
)
from repro.market.termination import (
    data_accepts,
    data_accepts_with_cost,
    task_accepts,
    task_accepts_with_cost,
)
from repro.market.costs import ConstantCost


class TestTheorem31:
    def test_transformed_quote_satisfies_eq5(self):
        q = QuotedPrice(rate=10.0, base=1.0, cap=5.0)
        q_star = equivalent_quote(q, delta_g=0.2)
        assert is_equilibrium_price(q_star, 0.2)

    def test_outcome_invariance(self):
        """Same payment and same net profit after the transform."""
        q = QuotedPrice(rate=10.0, base=1.0, cap=5.0)
        dg = 0.2
        q_star = equivalent_quote(q, dg)
        assert q_star.payment(dg) == pytest.approx(q.payment(dg))
        assert task_net_profit(q_star, dg, 100.0) == pytest.approx(
            task_net_profit(q, dg, 100.0)
        )

    def test_transform_rejects_gain_beyond_turning_point(self):
        q = QuotedPrice(rate=10.0, base=1.0, cap=2.0)  # TP = 0.1
        with pytest.raises(ValueError, match="cap"):
            equivalent_quote(q, delta_g=0.5)

    def test_transform_rejects_negative_gain(self):
        with pytest.raises(ValueError, match="non-negative"):
            equivalent_quote(QuotedPrice(1.0, 1.0, 2.0), -0.1)


@settings(max_examples=200, deadline=None)
@given(
    rate=st.floats(min_value=0.5, max_value=50),
    base=st.floats(min_value=0.0, max_value=5),
    headroom=st.floats(min_value=0.0, max_value=10),
    frac=st.floats(min_value=0.0, max_value=1.0),
)
def test_theorem_31_invariance_property(rate, base, headroom, frac):
    """Theorem 3.1 holds for any quote and any ΔG below the turning point."""
    q = QuotedPrice(rate, base, base + headroom)
    dg = frac * q.turning_point
    q_star = equivalent_quote(q, dg)
    assert q_star.cap <= q.cap + 1e-9
    assert q_star.payment(dg) == pytest.approx(q.payment(dg), abs=1e-9)
    u = rate + 1.0
    assert task_net_profit(q_star, dg, u) == pytest.approx(
        task_net_profit(q, dg, u), abs=1e-9
    )


class TestLemma31:
    def test_dominant_quote_maximises_profit(self):
        candidates = [
            QuotedPrice(10.0, 1.0, 4.0),
            QuotedPrice(12.0, 1.5, 4.5),
            QuotedPrice(8.0, 0.5, 3.0),
        ]
        dg = 0.2
        chosen = select_dominant_quote(candidates, dg, utility_rate=100.0)
        best_profit = max(task_net_profit(q, dg, 100.0) for q in candidates)
        assert task_net_profit(chosen, dg, 100.0) == pytest.approx(best_profit)
        assert is_equilibrium_price(chosen, min(dg, chosen.turning_point), tolerance=1e-9)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            select_dominant_quote([], 0.1, 10.0)


class TestProposition32:
    """Constant-cost Eq. 7 acceptance == Case-5 with ε_t = ε_tc/(u−p)."""

    @settings(max_examples=200, deadline=None)
    @given(
        rate=st.floats(min_value=0.5, max_value=20),
        base=st.floats(min_value=0.0, max_value=3),
        headroom=st.floats(min_value=0.01, max_value=5),
        frac=st.floats(min_value=0.0, max_value=1.2),
        eps_tc=st.floats(min_value=0.0, max_value=2.0),
        round_number=st.integers(min_value=1, max_value=100),
    )
    def test_equivalence_property(self, rate, base, headroom, frac, eps_tc, round_number):
        q = QuotedPrice(rate, base, base + headroom)
        u = rate + 5.0
        dg = frac * q.turning_point
        cost = ConstantCost(1.7)
        eps_t = epsilon_t_from_cost_tolerance(eps_tc, u, rate)
        assert task_accepts_with_cost(q, dg, u, cost, round_number, eps_tc) == (
            task_accepts(q, dg, eps_t)
        )


class TestProposition31:
    """Constant-cost Eq. 6 acceptance == Case-2 with the derived ε_d."""

    @settings(max_examples=200, deadline=None)
    @given(
        rate=st.floats(min_value=0.5, max_value=20),
        base=st.floats(min_value=0.0, max_value=3),
        headroom=st.floats(min_value=0.01, max_value=5),
        frac=st.floats(min_value=0.0, max_value=1.0),
        eps_dc=st.floats(min_value=0.0, max_value=2.0),
        r_rate=st.floats(min_value=0.1, max_value=25),
        r_base=st.floats(min_value=0.0, max_value=4),
        round_number=st.integers(min_value=1, max_value=100),
    )
    def test_equivalence_property(
        self, rate, base, headroom, frac, eps_dc, r_rate, r_base, round_number
    ):
        from hypothesis import assume

        q = QuotedPrice(rate, base, base + headroom)
        reserved = ReservedPrice(rate=r_rate, base=r_base)
        dg = frac * q.turning_point
        cost = ConstantCost(0.9)
        eps_d = epsilon_d_from_cost_tolerance(eps_dc, q, reserved)
        # The two formulations are algebraically identical; skip draws
        # that land within float rounding of the decision boundary.
        margin = (q.base + q.rate * dg) - (
            max(reserved.base, q.base)
            + max(reserved.rate, q.rate) * q.turning_point
            - eps_dc
        )
        assume(abs(margin) > 1e-7)
        assert data_accepts_with_cost(q, dg, reserved, cost, round_number, eps_dc) == (
            data_accepts(q, dg, eps_d)
        )


class TestEquilibriumPredicate:
    def test_exact_equilibrium(self):
        q = QuotedPrice(10.0, 1.0, 3.0)
        assert is_equilibrium_price(q, 0.2, tolerance=1e-12)
        assert not is_equilibrium_price(q, 0.21, tolerance=1e-3)
