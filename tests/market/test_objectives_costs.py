"""Tests for objectives (Eqs. 3-4) and bargaining-cost models (§3.4.4)."""

import pytest

from repro.market import (
    ConstantCost,
    ExponentialCost,
    LinearCost,
    NoCost,
    QuotedPrice,
    ScaledCost,
    break_even_gain,
    data_revenue_gap,
    make_cost,
    task_net_profit,
)


class TestObjectives:
    def quote(self):
        return QuotedPrice(rate=10.0, base=1.0, cap=3.0)

    def test_net_profit_at_break_even_is_zero(self):
        q = self.quote()
        be = break_even_gain(q, utility_rate=100.0)
        assert task_net_profit(q, be, 100.0) == pytest.approx(0.0)

    def test_net_profit_monotone_in_gain(self):
        q = self.quote()
        profits = [task_net_profit(q, dg, 100.0) for dg in (0.0, 0.1, 0.2, 0.5)]
        assert profits == sorted(profits)

    def test_break_even_formula(self):
        q = self.quote()
        assert break_even_gain(q, 101.0) == pytest.approx(1.0 / 91.0)

    def test_break_even_requires_rationality(self):
        with pytest.raises(ValueError, match="u > p"):
            break_even_gain(self.quote(), utility_rate=5.0)

    def test_revenue_gap_zero_at_turning_point(self):
        q = self.quote()
        assert data_revenue_gap(q, q.turning_point) == pytest.approx(0.0)

    def test_revenue_gap_positive_away_from_turning_point(self):
        q = self.quote()
        assert data_revenue_gap(q, 0.0) == pytest.approx(2.0)
        assert data_revenue_gap(q, q.turning_point / 2) > 0


class TestCostModels:
    def test_no_cost(self):
        assert NoCost()(100) == 0.0

    def test_constant(self):
        assert ConstantCost(3.0)(1) == 3.0
        assert ConstantCost(3.0)(500) == 3.0

    def test_linear(self):
        assert LinearCost(0.5)(10) == pytest.approx(5.0)

    def test_exponential(self):
        assert ExponentialCost(1.1)(2) == pytest.approx(1.21)

    def test_exponential_needs_a_gt_one(self):
        with pytest.raises(ValueError, match="a > 1"):
            ExponentialCost(0.9)

    def test_scaled(self):
        assert ScaledCost(LinearCost(1.0), 0.1)(10) == pytest.approx(1.0)

    def test_negative_round_rejected(self):
        with pytest.raises(ValueError):
            LinearCost(1.0)(-1)

    def test_monotone_in_rounds(self):
        for model in (LinearCost(0.3), ExponentialCost(1.05)):
            values = [model(t) for t in range(1, 20)]
            assert values == sorted(values)

    def test_factory(self):
        assert isinstance(make_cost("none"), NoCost)
        assert isinstance(make_cost("constant", 1.0), ConstantCost)
        assert isinstance(make_cost("linear", 0.1), LinearCost)
        assert isinstance(make_cost("exponential", 1.01), ExponentialCost)
        assert isinstance(make_cost("linear", 0.1, scale=0.1), ScaledCost)
        # The paper's Table 3 scaling: C_t = C_d = C(T)/10.
        assert make_cost("linear", 1.0, scale=0.1)(10) == pytest.approx(1.0)

    def test_factory_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown cost kind"):
            make_cost("quadratic", 1.0)

    def test_factory_missing_a(self):
        with pytest.raises(ValueError, match="needs a"):
            make_cost("linear")
