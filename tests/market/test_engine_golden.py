"""Golden-trace regression tests for the bargaining engine.

Two invariants are pinned here:

1. ``run()`` and a manual ``start()``/``step()`` loop produce
   byte-identical :class:`RoundRecord` trails — the stepwise refactor
   must never drift from the run-to-completion loop.
2. The trails match a canonical golden file checked into the repo
   (``golden/engine_traces.json``), so *any* future change to the
   engine's round semantics — record ordering, decision precedence,
   cost accounting, RNG consumption — shows up as a diff, not as a
   silent behaviour change.

Floats are serialised with ``float.hex`` so the comparison is exact
(byte-for-byte), not approximate.  Regenerate the golden file after an
*intentional* semantic change with::

    PYTHONPATH=src python tests/market/test_engine_golden.py --regen
"""

import json
import pathlib

import numpy as np

from repro.market import (
    BargainingEngine,
    FeatureBundle,
    LinearCost,
    MarketConfig,
    PerformanceOracle,
    ReservedPrice,
    StrategicDataParty,
    StrategicTaskParty,
)
from repro.market.strategies.baselines import RandomBundleDataParty
from repro.utils import spawn

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "engine_traces.json"

# (name, engine seed, data-party class, engine cost a) — the seed preset
# scenarios whose trails are pinned.
SCENARIOS = [
    ("strategic_seed3", 3, "strategic", 0.0),
    ("strategic_seed7", 7, "strategic", 0.0),
    ("strategic_cost_seed4", 4, "strategic", 0.02),
    ("random_bundle_seed1", 1, "random_bundle", 0.0),
]


def ladder_market(n_bundles=10, top_gain=0.2, seed=0):
    """The unit-test quality ladder (gains and reserved prices rise together)."""
    rng = np.random.default_rng(seed)
    bundles = [FeatureBundle.of(range(i + 1)) for i in range(n_bundles)]
    gains, reserved = {}, {}
    for i, b in enumerate(bundles):
        quality = (i + 1) / n_bundles
        gains[b] = top_gain * quality
        reserved[b] = ReservedPrice(
            rate=5.0 + 4.0 * quality + rng.uniform(0, 0.1),
            base=0.8 + 0.6 * quality + rng.uniform(0, 0.02),
        )
    config = MarketConfig(
        utility_rate=500.0,
        budget=6.0,
        initial_rate=5.6,
        initial_base=0.95,
        target_gain=top_gain,
        eps_d=1e-3,
        eps_t=1e-3,
        n_price_samples=64,
        max_rounds=400,
    )
    return gains, reserved, config


def build_engine(seed, data_kind="strategic", cost_a=0.0):
    """A fresh engine for one scenario (strategies are single-use)."""
    gains, reserved, config = ladder_market()
    oracle = PerformanceOracle.from_gains(gains)
    cost = LinearCost(cost_a) if cost_a else None
    task = StrategicTaskParty(
        config, list(gains.values()), cost_model=cost, rng=spawn(seed, "t")
    )
    if data_kind == "strategic":
        data = StrategicDataParty(gains, reserved, config, cost_model=cost)
    else:
        data = RandomBundleDataParty(gains, reserved, config, rng=spawn(seed, "d"))
    return BargainingEngine(
        task,
        data,
        oracle,
        utility_rate=config.utility_rate,
        cost_task=cost,
        cost_data=cost,
        reserved_prices=reserved,
        max_rounds=config.max_rounds,
    )


def _hex(value):
    return float(value).hex()


def serialise_record(record):
    """Exact (float-hex) serialisation of one RoundRecord."""
    return {
        "round": record.round_number,
        "quote": [_hex(record.quote.rate), _hex(record.quote.base),
                  _hex(record.quote.cap)],
        "bundle": list(record.bundle.indices) if record.bundle else None,
        "delta_g": _hex(record.delta_g),
        "payment": _hex(record.payment),
        "net_profit": _hex(record.net_profit),
        "cost_task": _hex(record.cost_task),
        "cost_data": _hex(record.cost_data),
        "data_decision": record.data_decision.value,
        "task_decision": record.task_decision.value
        if record.task_decision else None,
    }


def serialise_trail(outcome):
    return {
        "status": outcome.status,
        "terminated_by": outcome.terminated_by,
        "n_rounds": outcome.n_rounds,
        "history": [serialise_record(r) for r in outcome.history],
    }


def run_scenario(name):
    for scen_name, seed, data_kind, cost_a in SCENARIOS:
        if scen_name == name:
            return build_engine(seed, data_kind, cost_a).run()
    raise KeyError(name)


class TestRunEqualsStepLoop:
    """Invariant 1: run() is exactly a loop over step()."""

    def test_trails_identical(self):
        for name, seed, data_kind, cost_a in SCENARIOS:
            via_run = build_engine(seed, data_kind, cost_a).run()
            engine = build_engine(seed, data_kind, cost_a)
            state = engine.start()
            steps = 0
            while not state.done:
                state = engine.step(state)
                steps += 1
            via_step = state.outcome
            assert serialise_trail(via_run) == serialise_trail(via_step), name
            assert steps == via_run.n_rounds, name
            assert tuple(state.history) == tuple(via_run.history), name

    def test_step_rejects_terminal_state(self):
        import pytest

        engine = build_engine(3)
        state = engine.start()
        while not state.done:
            state = engine.step(state)
        with pytest.raises(ValueError, match="terminated"):
            engine.step(state)

    def test_intermediate_states_are_resumable_views(self):
        """Each non-terminal state carries the full trail so far."""
        engine = build_engine(3)
        state = engine.start()
        seen = 0
        while not state.done:
            state = engine.step(state)
            seen += 1
            assert len(state.history) == seen
            assert state.round_number == seen
        assert state.outcome.history == list(state.history)


class TestGoldenTraces:
    """Invariant 2: trails match the checked-in canonical traces."""

    def test_traces_match_golden_file(self):
        assert GOLDEN_PATH.exists(), (
            f"golden file missing: {GOLDEN_PATH}; regenerate with "
            "'PYTHONPATH=src python tests/market/test_engine_golden.py --regen'"
        )
        golden = json.loads(GOLDEN_PATH.read_text())
        for name, *_ in SCENARIOS:
            assert name in golden, f"scenario {name} missing from golden file"
            assert serialise_trail(run_scenario(name)) == golden[name], (
                f"{name}: engine trail deviates from the golden trace; if the "
                "change is intentional, regenerate the golden file"
            )


def regenerate():
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    golden = {name: serialise_trail(run_scenario(name)) for name, *_ in SCENARIOS}
    GOLDEN_PATH.write_text(json.dumps(golden, indent=1) + "\n")
    print(f"wrote {GOLDEN_PATH} ({sum(t['n_rounds'] for t in golden.values())} "
          "rounds across scenarios)")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
