"""Determinism contract of the population simulator.

Same ``(spec, seed)`` population => identical aggregate report — across
repeated runs, across different ``SessionPool`` batch sizes, and
regardless of how kernel and stepwise sessions interleave.  Batching is
an execution concern only; if it ever leaks into outcomes, sharded or
async execution would silently change results.
"""

import numpy as np

from repro.simulate import (
    PopulationSpec,
    SessionPool,
    build_report,
    sample_population,
)

MIXED = PopulationSpec(
    preset="synthetic",
    strategy_mix=(
        ("strategic", "strategic", 0.7),
        ("increase_price", "strategic", 0.2),
        ("strategic", "random_bundle", 0.1),
    ),
    cost_mix=(("none", 0.0, 0.7), ("linear", 0.05, 0.3)),
)


def _digest(spec, n, seed, batch_size):
    population = sample_population(spec, n, seed=seed)
    result = SessionPool(population, batch_size=batch_size).run()
    return build_report(population, result).digest(), result


class TestSameSeedSameReport:
    def test_two_runs_identical(self):
        d1, r1 = _digest(MIXED, 120, 7, 64)
        d2, r2 = _digest(MIXED, 120, 7, 64)
        assert d1 == d2
        np.testing.assert_array_equal(r1.status, r2.status)
        np.testing.assert_array_equal(r1.n_rounds, r2.n_rounds)
        np.testing.assert_array_equal(r1.payment, r2.payment)

    def test_batch_size_invariant(self):
        digests = set()
        results = []
        for batch_size in (1, 13, 64, 1000):
            d, r = _digest(MIXED, 120, 7, batch_size)
            digests.add(d)
            results.append(r)
        assert len(digests) == 1, "outcomes must not depend on batch size"
        for other in results[1:]:
            np.testing.assert_array_equal(results[0].net_profit, other.net_profit)
            np.testing.assert_array_equal(results[0].n_rounds, other.n_rounds)

    def test_different_seed_different_report(self):
        d1, _ = _digest(MIXED, 120, 7, 64)
        d2, _ = _digest(MIXED, 120, 8, 64)
        assert d1 != d2

    def test_population_resample_is_bitwise_stable(self):
        a = sample_population(MIXED, 80, seed=3)
        b = sample_population(MIXED, 80, seed=3)
        np.testing.assert_array_equal(a.gains, b.gains)
        np.testing.assert_array_equal(a.reserved_rate, b.reserved_rate)
        np.testing.assert_array_equal(a.target, b.target)
        np.testing.assert_array_equal(a.mix_idx, b.mix_idx)
        assert a.bundles == b.bundles
