"""Tests for the SessionPool scheduler and the vectorised kernel.

The load-bearing property: the batch kernel is the *same game* as the
scalar engine — identical decision rules, identical sampling
distributions — so on a common population the two must agree on
aggregate behaviour (they consume RNG streams in different orders, so
individual borderline sessions may differ, but the population must
not).
"""

import numpy as np
import pytest

from repro.simulate import PopulationSpec, SessionPool, build_report, sample_population
from repro.simulate.kernel import (
    BY_DATA,
    BY_ENGINE,
    BY_TASK,
    STATUS_ACCEPTED,
    simulate_strategic_batch,
)


class TestKernelMatchesEngine:
    def test_aggregates_agree_with_naive_engines(self):
        pop = sample_population(PopulationSpec(preset="synthetic"), 60, seed=11)
        result = SessionPool(pop, batch_size=32).run()
        naive = [pop.build_engine(i).run() for i in range(pop.n_sessions)]

        naive_accept = np.mean([o.accepted for o in naive])
        assert abs(result.accepted.mean() - naive_accept) < 0.12

        naive_rounds = np.mean([o.n_rounds for o in naive])
        kernel_rounds = result.n_rounds.mean()
        assert abs(kernel_rounds - naive_rounds) <= max(5.0, 0.25 * naive_rounds)

        naive_pay = np.mean([o.payment for o in naive if o.accepted])
        kernel_pay = result.payment[result.accepted].mean()
        assert kernel_pay == pytest.approx(naive_pay, rel=0.05)

        naive_net = np.mean([o.net_profit for o in naive if o.accepted])
        kernel_net = result.net_profit[result.accepted].mean()
        assert kernel_net == pytest.approx(naive_net, rel=0.05)

    def test_accepted_sessions_settle_at_the_cap(self):
        """Eq. 5 equilibrium: accepted payments sit at the final cap."""
        pop = sample_population(PopulationSpec(), 50, seed=12)
        result = SessionPool(pop).run()
        acc = result.accepted & (result.terminated_by == BY_DATA)
        if acc.any():
            np.testing.assert_allclose(
                result.payment[acc], result.final_cap[acc], rtol=0.05
            )

    def test_accounting_identity(self):
        """net profit == u * dG - payment for every accepted session."""
        pop = sample_population(PopulationSpec(), 80, seed=13)
        result = SessionPool(pop).run()
        acc = result.accepted
        np.testing.assert_allclose(
            result.net_profit[acc],
            pop.utility_rate[acc] * result.delta_g[acc] - result.payment[acc],
            rtol=1e-9,
        )

    def test_costs_accumulate_with_rounds(self):
        spec = PopulationSpec(cost_mix=(("linear", 0.01, 1.0),))
        pop = sample_population(spec, 40, seed=14)
        result = SessionPool(pop).run()
        np.testing.assert_allclose(
            result.cost_task, 0.01 * result.n_rounds, rtol=1e-9
        )


class TestPoolScheduling:
    def test_every_session_terminates(self):
        spec = PopulationSpec(
            strategy_mix=(("strategic", "strategic", 0.6),
                          ("increase_price", "strategic", 0.25),
                          ("strategic", "random_bundle", 0.15)),
        )
        pop = sample_population(spec, 90, seed=15)
        result = SessionPool(pop, batch_size=32).run()
        assert (result.status > 0).all()
        assert (result.n_rounds >= 1).all()
        assert set(np.unique(result.terminated_by)) <= {BY_DATA, BY_TASK, BY_ENGINE}
        assert result.kernel_sessions + result.stepped_sessions == pop.n_sessions
        assert result.kernel_sessions == int(pop.kernel_eligible().sum())

    def test_memoised_oracle_dedupes_platform_queries(self):
        spec = PopulationSpec(
            strategy_mix=(("increase_price", "strategic", 1.0),),
        )
        pop = sample_population(spec, 20, seed=16)
        result = SessionPool(pop, batch_size=8).run()
        assert result.stepped_sessions == 20
        assert result.oracle_queries > 0
        # One miss per distinct bundle at most; everything else cached.
        assert result.oracle_queries - result.oracle_hits <= len(pop.bundles)

    def test_failed_sessions_have_no_payment(self):
        pop = sample_population(PopulationSpec(), 120, seed=17)
        result = SessionPool(pop).run()
        failed_by_data = (result.status == 2) & (result.terminated_by == BY_DATA)
        assert (result.payment[failed_by_data] == 0.0).all()
        assert np.isnan(result.delta_g[failed_by_data]).all()


class TestKernelDirect:
    def test_subset_invocation_matches_pool(self):
        """Running a sub-batch directly reproduces the pool's rows."""
        pop = sample_population(PopulationSpec(), 30, seed=18)
        pool_result = SessionPool(pop, batch_size=30).run()
        out = simulate_strategic_batch(pop, np.arange(10, 20))
        np.testing.assert_array_equal(out["status"],
                                      pool_result.status[10:20])
        np.testing.assert_array_equal(out["n_rounds"],
                                      pool_result.n_rounds[10:20])
        np.testing.assert_array_equal(out["payment"],
                                      pool_result.payment[10:20])


class TestReport:
    def test_report_counts_are_consistent(self):
        pop = sample_population(PopulationSpec(), 70, seed=19)
        result = SessionPool(pop).run()
        report = build_report(pop, result)
        assert report.accepted + report.failed + report.max_rounds == 70
        assert report.accepted == int((result.status == STATUS_ACCEPTED).sum())
        assert report.acceptance_rate == pytest.approx(report.accepted / 70)
        text = report.to_text()
        assert "sessions" in text and "Outcomes" in text
        assert report.digest() in text

    def test_histograms_cover_all_accepted(self):
        pop = sample_population(PopulationSpec(), 70, seed=20)
        result = SessionPool(pop).run()
        report = build_report(pop, result, n_bins=8)
        if report.accepted:
            assert sum(report.payment_hist[1]) == report.accepted
            assert len(report.payment_hist[0]) == 9
