"""Tests for the vectorised population sampler."""

import numpy as np
import pytest

from repro.market.config import MarketConfig
from repro.simulate import PopulationSpec, sample_population


class TestSpecValidation:
    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="preset"):
            PopulationSpec(preset="mnist")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="task strategy"):
            PopulationSpec(strategy_mix=(("greedy", "strategic", 1.0),))

    def test_unknown_cost_rejected(self):
        with pytest.raises(ValueError, match="cost kind"):
            PopulationSpec(cost_mix=(("quadratic", 1.0, 1.0),))

    def test_bad_quantile_range_rejected(self):
        with pytest.raises(ValueError, match="quantile"):
            PopulationSpec(target_quantile_range=(0.9, 0.2))

    def test_cost_param_constraints_enforced_at_spec_time(self):
        """Invalid schedules must fail at construction, not mid-run —
        and never diverge between the kernel and stepwise paths."""
        with pytest.raises(ValueError, match="exponential"):
            PopulationSpec(cost_mix=(("exponential", 0.5, 1.0),))
        with pytest.raises(ValueError, match="linear"):
            PopulationSpec(cost_mix=(("linear", 0.0, 1.0),))


class TestSampledPopulation:
    def test_every_session_config_is_valid(self):
        """Each sampled session must satisfy MarketConfig's invariants."""
        pop = sample_population(PopulationSpec(preset="titanic"), 60, seed=0)
        for i in range(pop.n_sessions):
            config = pop.config(i)  # __post_init__ validates
            assert isinstance(config, MarketConfig)
            opening_cap = config.initial_base + config.initial_rate * config.target_gain
            assert opening_cap <= config.budget + 1e-9
            assert config.target_gain > 0

    def test_targets_are_catalogue_gains(self):
        """Targets snap to order statistics so a bundle can settle there."""
        pop = sample_population(PopulationSpec(), 100, seed=1)
        gains = set(float(g) for g in pop.gains)
        assert all(float(t) in gains for t in pop.target)

    def test_heterogeneity(self):
        """Sessions genuinely differ — that is the point of a population."""
        pop = sample_population(PopulationSpec(), 100, seed=2)
        assert np.unique(pop.utility_rate).size > 90
        assert np.unique(pop.budget).size > 90
        assert np.unique(np.round(pop.reserved_rate, 12), axis=0).shape[0] > 90

    def test_mix_assignment_matches_weights(self):
        spec = PopulationSpec(
            strategy_mix=(("strategic", "strategic", 0.8),
                          ("increase_price", "strategic", 0.2)),
        )
        pop = sample_population(spec, 800, seed=3)
        share = float((pop.mix_idx == 0).mean())
        assert 0.7 < share < 0.9
        assert pop.kernel_eligible().sum() == (pop.mix_idx == 0).sum()

    def test_reserved_tables_match_arrays(self):
        pop = sample_population(PopulationSpec(), 5, seed=4)
        table = pop.reserved(2)
        for j, bundle in enumerate(pop.bundles):
            assert table[bundle].rate == pytest.approx(pop.reserved_rate[2, j])
            assert table[bundle].base == pytest.approx(pop.reserved_base[2, j])

    def test_build_engine_runs(self):
        pop = sample_population(PopulationSpec(), 4, seed=5)
        outcome = pop.build_engine(0).run()
        assert outcome.status in ("accepted", "failed", "max_rounds")

    def test_cost_models_follow_mix(self):
        spec = PopulationSpec(cost_mix=(("linear", 0.05, 1.0),))
        pop = sample_population(spec, 3, seed=6)
        model = pop.cost_model(0)
        assert model is not None
        assert model(10) == pytest.approx(0.5)
