"""Externally-assembled kernel batches: assembly, concat, heterogeneity.

The contract under test: :func:`simulate_assembled_batch` over a batch
merged from *different* populations (different catalogue widths, round
caps, sampling depths) returns, for every session, records bit-identical
to running that session's home population alone — padding and batch
composition are pure execution concerns.
"""

import numpy as np
import pytest

from repro.simulate.kernel import (
    StrategicBatch,
    assemble_strategic_batch,
    concat_strategic_batches,
    simulate_assembled_batch,
    simulate_strategic_batch,
)
from repro.simulate.population import PopulationSpec, sample_population


def _population(seed, *, n_sessions=40, n_bundles=24, max_rounds=500,
                n_price_samples=120, preset="synthetic"):
    spec = PopulationSpec(
        preset=preset,
        n_bundles=n_bundles,
        max_rounds=max_rounds,
        n_price_samples=n_price_samples,
    )
    return sample_population(spec, n_sessions, seed=seed)


def _assert_records_equal(got, want, rows_got, rows_want):
    for key in want:
        np.testing.assert_array_equal(
            got[key][rows_got], want[key][rows_want], err_msg=key
        )


class TestAssembledEntryPoint:
    def test_wrapper_equals_assemble_plus_simulate(self):
        pop = _population(0)
        indices = np.arange(pop.n_sessions)
        via_wrapper = simulate_strategic_batch(pop, indices)
        via_parts = simulate_assembled_batch(
            assemble_strategic_batch(pop, indices)
        )
        _assert_records_equal(via_parts, via_wrapper,
                              slice(None), slice(None))

    def test_batch_carries_per_session_protocol_constants(self):
        pop = _population(3, max_rounds=77, n_price_samples=31)
        batch = assemble_strategic_batch(pop, np.arange(5))
        assert len(batch) == 5
        assert (batch.max_rounds == 77).all()
        assert (batch.n_price_samples == 31).all()

    def test_generator_count_mismatch_rejected(self):
        pop = _population(1)
        batch = assemble_strategic_batch(pop, np.arange(4))
        with pytest.raises(ValueError, match="generators"):
            StrategicBatch(
                **{
                    **{f: getattr(batch, f) for f in (
                        "gains", "reserved_rate", "reserved_base",
                        "utility_rate", "budget", "initial_rate",
                        "initial_base", "target", "eps_d", "eps_t",
                        "eps_dc", "eps_tc", "cost_kind", "cost_a",
                        "n_price_samples", "max_rounds")},
                    "generators": batch.generators[:-1],
                }
            )


class TestHeterogeneousConcat:
    def test_concat_of_one_is_identity(self):
        pop = _population(2)
        batch = assemble_strategic_batch(pop, np.arange(8))
        assert concat_strategic_batches([batch]) is batch

    def test_concat_requires_a_batch(self):
        with pytest.raises(ValueError, match="at least one"):
            concat_strategic_batches([])

    def test_mixed_catalogue_widths_bit_identical_to_solo_runs(self):
        """Sessions from three differently-shaped populations merged
        into one kernel invocation terminate exactly as they do alone."""
        pops = [
            _population(10, n_sessions=30, n_bundles=12),
            _population(11, n_sessions=25, n_bundles=40,
                        n_price_samples=60),
            _population(12, n_sessions=20, n_bundles=24, max_rounds=50),
        ]
        solo = [
            simulate_strategic_batch(pop, np.arange(pop.n_sessions))
            for pop in pops
        ]
        merged = concat_strategic_batches(
            [assemble_strategic_batch(pop, np.arange(pop.n_sessions))
             for pop in pops]
        )
        assert merged.gains.shape == (75, 40)
        out = simulate_assembled_batch(merged)
        start = 0
        for pop, want in zip(pops, solo):
            rows = slice(start, start + pop.n_sessions)
            _assert_records_equal(out, want, rows, slice(None))
            start += pop.n_sessions

    def test_padding_columns_are_never_traded(self):
        """A padded column must never be offered: every transacted gain
        of the narrow population exists in its real catalogue."""
        narrow = _population(20, n_sessions=30, n_bundles=8)
        wide = _population(21, n_sessions=30, n_bundles=32)
        merged = concat_strategic_batches([
            assemble_strategic_batch(narrow, np.arange(narrow.n_sessions)),
            assemble_strategic_batch(wide, np.arange(wide.n_sessions)),
        ])
        out = simulate_assembled_batch(merged)
        gains = out["delta_g"][:narrow.n_sessions]
        real = set(float(g) for g in narrow.gains)
        for value in gains[np.isfinite(gains)]:
            assert float(value) in real

    def test_interleaved_cost_mixes_survive_concat(self):
        spec = PopulationSpec(
            preset="synthetic",
            cost_mix=(("none", 0.0, 1.0), ("linear", 0.05, 1.0)),
        )
        pop_a = sample_population(spec, 20, seed=30)
        pop_b = _population(31, n_sessions=15, n_bundles=10)
        solo_a = simulate_strategic_batch(pop_a, np.arange(20))
        solo_b = simulate_strategic_batch(pop_b, np.arange(15))
        out = simulate_assembled_batch(concat_strategic_batches([
            assemble_strategic_batch(pop_a, np.arange(20)),
            assemble_strategic_batch(pop_b, np.arange(15)),
        ]))
        _assert_records_equal(out, solo_a, slice(0, 20), slice(None))
        _assert_records_equal(out, solo_b, slice(20, 35), slice(None))
