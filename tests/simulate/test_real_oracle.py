"""Oracle-backed populations: the simulator over a real VFL substrate."""

import numpy as np
import pytest

from repro.market import FeatureBundle, PerformanceOracle
from repro.simulate import PopulationSpec, SessionPool, build_report, sample_population


def toy_oracle(n_features=6, n_bundles=10, scale=0.2, seed=0):
    """A stand-in for a factory-built oracle (real ones carry the same
    interface; tests use synthetic gains to stay fast)."""
    rng = np.random.default_rng(seed)
    gains = {}
    seen = set()
    while len(gains) < n_bundles:
        size = int(rng.integers(1, n_features + 1))
        combo = tuple(sorted(rng.choice(n_features, size=size, replace=False)))
        if combo in seen:
            continue
        seen.add(combo)
        gains[FeatureBundle.of(combo)] = scale * (len(combo) / n_features) ** 0.7
    return PerformanceOracle.from_gains(gains)


class TestOracleBackedPopulation:
    def test_catalogue_comes_from_oracle(self):
        oracle = toy_oracle()
        spec = PopulationSpec(preset="titanic", n_features=99, n_bundles=99)
        population = sample_population(spec, 50, seed=0, oracle=oracle)
        assert population.bundles == oracle.bundles
        assert population.oracle is oracle
        expected = oracle.gains()
        for b, g in zip(population.bundles, population.gains):
            assert g == expected[b]

    def test_targets_are_positive_oracle_gains(self):
        oracle = toy_oracle()
        spec = PopulationSpec(preset="titanic")
        population = sample_population(spec, 80, seed=1, oracle=oracle)
        gains = set(float(g) for g in population.gains if g > 0)
        assert all(float(t) in gains for t in population.target)
        assert (population.target > 0).all()

    def test_negative_gain_bundles_never_targeted(self):
        gains = {
            FeatureBundle.of([0]): -0.05,
            FeatureBundle.of([1]): -0.01,
            FeatureBundle.of([0, 1]): 0.15,
            FeatureBundle.of([1, 2]): 0.18,
        }
        oracle = PerformanceOracle.from_gains(gains)
        spec = PopulationSpec(preset="titanic", target_quantile_range=(0.1, 1.0))
        population = sample_population(spec, 60, seed=2, oracle=oracle)
        assert (population.target > 0).all()

    def test_all_negative_catalogue_rejected(self):
        oracle = PerformanceOracle.from_gains(
            {FeatureBundle.of([0]): -0.1, FeatureBundle.of([1]): -0.2}
        )
        with pytest.raises(ValueError, match="positive-gain bundle"):
            sample_population(PopulationSpec(preset="titanic"), 10, oracle=oracle)

    def test_pool_runs_end_to_end_on_oracle(self):
        oracle = toy_oracle()
        spec = PopulationSpec(preset="titanic")
        population = sample_population(spec, 120, seed=3, oracle=oracle)
        result = SessionPool(population, batch_size=64).run()
        report = build_report(population, result)
        assert report.n_sessions == 120
        assert result.accepted.any()

    def test_synthetic_sampling_unchanged_without_oracle(self):
        """oracle=None must leave the PR-1 sampling path bit-identical."""
        spec = PopulationSpec(preset="synthetic")
        a = sample_population(spec, 40, seed=4)
        b = sample_population(spec, 40, seed=4, oracle=None)
        assert a.bundles == b.bundles
        np.testing.assert_array_equal(a.gains, b.gains)
        np.testing.assert_array_equal(a.target, b.target)
        np.testing.assert_array_equal(a.reserved_rate, b.reserved_rate)
