"""Tests for the VFL course runner (ΔG measurement)."""

import numpy as np
import pytest

from repro.data import load_titanic
from repro.vfl import Channel, run_vfl
from repro.vfl.runner import isolated_performance


@pytest.fixture(scope="module")
def dataset():
    return load_titanic(seed=0).prepare(seed=0)


class TestIsolatedPerformance:
    def test_beats_chance(self, dataset):
        m0 = isolated_performance(dataset, base_model="random_forest", seed=0)
        assert m0 > 0.55

    def test_deterministic(self, dataset):
        a = isolated_performance(dataset, base_model="random_forest", seed=1)
        b = isolated_performance(dataset, base_model="random_forest", seed=1)
        assert a == b

    def test_bad_model_rejected(self, dataset):
        with pytest.raises(ValueError, match="base_model"):
            isolated_performance(dataset, base_model="svm")


class TestRunVFL:
    def test_full_bundle_gains_rf(self, dataset):
        result = run_vfl(dataset, range(dataset.d_data), base_model="random_forest", seed=0)
        assert result.delta_g > 0.05
        assert result.performance_joint > result.performance_isolated

    def test_full_bundle_gains_mlp(self, dataset):
        result = run_vfl(
            dataset,
            range(dataset.d_data),
            base_model="mlp",
            model_params={"epochs": 30},
            seed=0,
        )
        assert result.delta_g > 0.03

    def test_m0_cache_respected(self, dataset):
        result = run_vfl(
            dataset, (0, 1), base_model="random_forest", seed=0, m0=0.6
        )
        assert result.performance_isolated == 0.6

    def test_channel_accumulates(self, dataset):
        ch = Channel()
        run_vfl(dataset, (0, 1), base_model="random_forest", seed=0, channel=ch, m0=0.6)
        first = ch.stats()["messages"]
        run_vfl(dataset, (0, 1), base_model="random_forest", seed=0, channel=ch, m0=0.6)
        assert ch.stats()["messages"] == 2 * first

    def test_empty_bundle_rejected(self, dataset):
        with pytest.raises(ValueError, match="at least one feature"):
            run_vfl(dataset, (), base_model="random_forest")

    def test_unknown_model_param_rejected(self, dataset):
        with pytest.raises(ValueError, match="unknown model params"):
            run_vfl(dataset, (0,), model_params={"bogus": 1})

    def test_result_fields(self, dataset):
        result = run_vfl(dataset, (0, 1, 2), base_model="random_forest", seed=0, m0=0.6)
        assert result.bundle == (0, 1, 2)
        assert result.base_model == "random_forest"
        assert result.channel_stats["messages"] > 0

    def test_bigger_informative_bundle_not_worse(self, dataset):
        """Full bundle should (weakly) dominate a tiny one on average."""
        gains_small, gains_full = [], []
        for seed in range(3):
            m0 = isolated_performance(dataset, base_model="random_forest", seed=seed)
            gains_small.append(
                run_vfl(dataset, (0,), base_model="random_forest", seed=seed, m0=m0).delta_g
            )
            gains_full.append(
                run_vfl(
                    dataset, range(dataset.d_data),
                    base_model="random_forest", seed=seed, m0=m0,
                ).delta_g
            )
        assert np.mean(gains_full) > np.mean(gains_small)
