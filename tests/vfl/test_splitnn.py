"""Tests for the SplitNN protocol."""

import numpy as np
import pytest

from repro.vfl import Channel, SplitNN
from repro.vfl.parties import DataParty, TaskParty


def xor_parties(n=600, seed=0):
    """A task neither party can solve alone: y = XOR(sign(x_t), sign(x_d))."""
    rng = np.random.default_rng(seed)
    x_t = rng.normal(size=(n, 2))
    x_d = rng.normal(size=(n, 2))
    y = ((x_t[:, 0] > 0) ^ (x_d[:, 0] > 0)).astype(np.float64)
    train = np.arange(0, int(0.8 * n))
    test = np.arange(int(0.8 * n), n)
    task = TaskParty(X=x_t, y=y, train_idx=train, test_idx=test)
    data = DataParty(X=x_d, train_idx=train, test_idx=test)
    return task, data


class TestSplitNN:
    def test_joint_training_solves_cross_party_xor(self):
        task, data = xor_parties()
        ch = Channel()
        net = SplitNN(
            2, 2, embed_dim=16, top_hidden=8, epochs=80, batch_size=64, rng=0
        )
        net.fit(task, data, (0, 1), ch)
        acc = net.score(task.test_idx, task.y_test.astype(int), ch)
        assert acc > 0.9, f"joint XOR accuracy too low: {acc}"

    def test_task_party_alone_cannot_solve_it(self):
        """Sanity: the XOR labels are independent of either party's marginal."""
        task, _ = xor_parties()
        corr = np.corrcoef(task.X[:, 0] > 0, task.y)[0, 1]
        assert abs(corr) < 0.15

    def test_loss_curve_decreases(self):
        task, data = xor_parties(300)
        net = SplitNN(2, 2, embed_dim=8, top_hidden=4, epochs=30, batch_size=32, rng=0)
        net.fit(task, data, (0, 1), Channel())
        assert net.loss_curve_[-1] < net.loss_curve_[0]

    def test_only_activations_and_grads_cross_boundary(self):
        task, data = xor_parties(200)
        ch = Channel(keep_log=True)
        SplitNN(2, 2, embed_dim=4, top_hidden=4, epochs=2, batch_size=64, rng=0).fit(
            task, data, (0, 1), ch
        )
        kinds = {entry[2] for entry in ch.log}
        assert kinds == {"batch_rows", "activations", "activation_grads"}

    def test_deterministic_given_seed(self):
        task, data = xor_parties(200)
        p1 = (
            SplitNN(2, 2, embed_dim=4, top_hidden=4, epochs=3, rng=5)
            .fit(task, data, (0, 1), Channel())
            .predict_proba(task.test_idx, Channel())
        )
        p2 = (
            SplitNN(2, 2, embed_dim=4, top_hidden=4, epochs=3, rng=5)
            .fit(task, data, (0, 1), Channel())
            .predict_proba(task.test_idx, Channel())
        )
        np.testing.assert_array_equal(p1, p2)

    def test_empty_bundle_rejected(self):
        task, data = xor_parties(100)
        with pytest.raises(ValueError, match="at least one feature"):
            SplitNN(2, 1, epochs=1, rng=0).fit(task, data, (), Channel())

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ValueError, match="fit"):
            SplitNN(2, 2, rng=0).predict_proba(np.arange(3), Channel())
