"""A registered custom base model reaches oracle construction end to end.

The satellite contract of the registry wiring: ``register_base_model``
with course builders makes ``MarketSpec.base_model`` resolve through
``registry.BASE_MODELS`` inside ``Market.from_spec``/``run_vfl`` — no
hardcoded lookup left — so an extension model trains the pre-bargaining
oracle exactly like the built-ins.
"""

import numpy as np
import pytest

from repro.data import load_titanic
from repro.market.market import Market
from repro.ml.linear import LogisticRegression
from repro.service import MarketSpec, registry
from repro.service.registry import register_base_model
from repro.vfl.runner import isolated_performance, resolve_model_params, run_vfl


def _logit_isolated(dataset, params, rng):
    model = LogisticRegression(max_iter=params["max_iter"])
    model.fit(dataset.task_train, dataset.y_train.astype(np.float64))
    return model.score(dataset.task_test, dataset.y_test)


def _logit_joint(dataset, bundle, params, rng, *, channel,
                 task_design=None, data_design=None):
    cols = list(bundle)
    X_train = np.hstack(
        [dataset.task_train, dataset.X_data[dataset.train_idx][:, cols]]
    )
    X_test = np.hstack(
        [dataset.task_test, dataset.X_data[dataset.test_idx][:, cols]]
    )
    model = LogisticRegression(max_iter=params["max_iter"])
    model.fit(X_train, dataset.y_train.astype(np.float64))
    return model.score(X_test, dataset.y_test)


@pytest.fixture(scope="module", autouse=True)
def central_logit():
    register_base_model(
        "central_logit",
        defaults={"max_iter": 200},
        isolated=_logit_isolated,
        joint=_logit_joint,
        overwrite=True,
    )
    yield
    registry.BASE_MODELS.unregister("central_logit")


@pytest.fixture(scope="module")
def dataset():
    return load_titanic(400, seed=0).prepare(seed=0)


class TestRunnerDispatch:
    def test_params_resolve_from_registration(self):
        assert resolve_model_params("central_logit") == {"max_iter": 200}
        assert resolve_model_params("central_logit", {"max_iter": 50}) == {
            "max_iter": 50
        }
        with pytest.raises(ValueError, match="unknown model params"):
            resolve_model_params("central_logit", {"depth": 3})

    def test_unknown_base_model_rejected(self, dataset):
        with pytest.raises(ValueError, match="base_model"):
            isolated_performance(dataset, base_model="nope")

    def test_run_vfl_through_custom_builders(self, dataset):
        result = run_vfl(
            dataset, range(dataset.d_data), base_model="central_logit", seed=0
        )
        assert result.base_model == "central_logit"
        assert 0.0 < result.performance_joint <= 1.0
        assert np.isfinite(result.delta_g)

    def test_custom_model_is_deterministic(self, dataset):
        a = run_vfl(dataset, (0, 1), base_model="central_logit", seed=3, m0=0.6)
        b = run_vfl(dataset, (0, 1), base_model="central_logit", seed=3, m0=0.6)
        assert a.performance_joint == b.performance_joint

    def test_designs_rejected_without_support(self, dataset):
        with pytest.raises(ValueError, match="design-capable"):
            run_vfl(dataset, (0,), base_model="central_logit", seed=0,
                    m0=0.6, task_design=object())

    def test_builderless_entry_cannot_run_courses(self, dataset):
        register_base_model("name_only", overwrite=True)
        try:
            with pytest.raises(ValueError, match="without course builders"):
                isolated_performance(dataset, base_model="name_only")
        finally:
            registry.BASE_MODELS.unregister("name_only")


class TestMarketIntegration:
    def test_from_spec_builds_oracle_on_custom_model(self):
        """The whole stack: spec validation accepts the registered name
        and the oracle's courses train through the custom builders."""
        spec = MarketSpec(
            dataset="titanic",
            base_model="central_logit",
            seed=0,
            n_bundles=3,
            no_cache=True,
        )
        market = Market.from_spec(spec)
        assert market.name == "titanic/central_logit"
        assert market.oracle.base_model == "central_logit"
        assert len(market.oracle) >= 2
        assert market.config.target_gain > 0

    def test_registration_propagates_to_cli_choices(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["simulate", "--dataset", "titanic",
             "--base-model", "central_logit"]
        )
        assert args.base_model == "central_logit"
