"""Tests for party-local data views."""

import numpy as np
import pytest

from repro.data import load_titanic
from repro.vfl.parties import DataParty, TaskParty, parties_from_dataset


@pytest.fixture(scope="module")
def dataset():
    return load_titanic(400, seed=0).prepare(seed=0)


class TestPartiesFromDataset:
    def test_shapes(self, dataset):
        task, data = parties_from_dataset(dataset)
        assert task.d == dataset.d_task
        assert data.d == dataset.d_data
        assert task.X.shape[0] == data.X.shape[0] == dataset.n_samples

    def test_train_test_views(self, dataset):
        task, _ = parties_from_dataset(dataset)
        assert task.X_train.shape[0] == task.y_train.shape[0]
        assert task.X_test.shape[0] == task.y_test.shape[0]
        np.testing.assert_array_equal(task.y_test, dataset.y_test.astype(float))

    def test_task_party_row_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            TaskParty(
                X=np.zeros((3, 2)),
                y=np.zeros(4),
                train_idx=np.arange(2),
                test_idx=np.arange(2, 3),
            )


class TestDataParty:
    def test_bundle_view_selects_columns(self, dataset):
        _, data = parties_from_dataset(dataset)
        view = data.bundle_view([0, 3])
        np.testing.assert_array_equal(view[:, 1], data.X[:, 3])

    def test_bundle_view_bounds_checked(self, dataset):
        _, data = parties_from_dataset(dataset)
        with pytest.raises(ValueError, match="bundle indices"):
            data.bundle_view([data.d + 5])
