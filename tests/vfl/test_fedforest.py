"""Tests for the federated forest: losslessness and protocol hygiene."""

import numpy as np
import pytest

from repro.data import load_titanic
from repro.ml import RandomForestClassifier
from repro.vfl import Channel, FederatedForest
from repro.vfl.parties import parties_from_dataset


@pytest.fixture(scope="module")
def setting():
    dataset = load_titanic(500, seed=0).prepare(seed=0)
    task, data = parties_from_dataset(dataset)
    return dataset, task, data


def centralized_proba(dataset, n_estimators, **kw):
    Xtr = np.hstack([dataset.task_train, dataset.data_train])
    Xte = np.hstack([dataset.task_test, dataset.data_test])
    rf = RandomForestClassifier(n_estimators, min_samples_leaf=2, **kw)
    rf.fit(Xtr, dataset.y_train.astype(float))
    return rf.predict_proba(Xte)


class TestLosslessness:
    def test_deterministic_equivalence_no_randomness(self, setting):
        """Without bootstrap/feature sampling the protocol is exactly lossless."""
        dataset, task, data = setting
        ch = Channel()
        ff = FederatedForest(
            4, max_depth=5, max_features=None, bootstrap=False, rng=0
        ).fit(task, data, range(dataset.d_data), ch)
        p_fed = ff.predict_proba(dataset.test_idx, ch)
        p_cen = centralized_proba(
            dataset, 4, max_depth=5, max_features=None, bootstrap=False, rng=0
        )
        np.testing.assert_array_equal(p_fed, p_cen)

    def test_equivalence_with_bootstrap_and_feature_sampling(self, setting):
        """Shared seeds align the bootstrap/feature-sampling streams too."""
        dataset, task, data = setting
        ch = Channel()
        ff = FederatedForest(6, max_depth=6, rng=42).fit(
            task, data, range(dataset.d_data), ch
        )
        p_fed = ff.predict_proba(dataset.test_idx, ch)
        p_cen = centralized_proba(dataset, 6, max_depth=6, rng=42)
        np.testing.assert_array_equal(p_fed, p_cen)

    def test_partial_bundle_matches_centralized_on_subset(self, setting):
        dataset, task, data = setting
        bundle = (0, 2, 5)
        ch = Channel()
        ff = FederatedForest(
            3, max_depth=4, max_features=None, bootstrap=False, rng=1
        ).fit(task, data, bundle, ch)
        p_fed = ff.predict_proba(dataset.test_idx, ch)
        Xtr = np.hstack([dataset.task_train, dataset.data_train[:, list(bundle)]])
        Xte = np.hstack([dataset.task_test, dataset.data_test[:, list(bundle)]])
        rf = RandomForestClassifier(
            3, max_depth=4, max_features=None, bootstrap=False,
            min_samples_leaf=2, rng=1,
        ).fit(Xtr, dataset.y_train.astype(float))
        np.testing.assert_array_equal(p_fed, rf.predict_proba(Xte))


class TestProtocolHygiene:
    def test_data_party_thresholds_stay_private(self, setting):
        """Task party's tree never materialises data-party thresholds."""
        dataset, task, data = setting
        ch = Channel()
        ff = FederatedForest(3, max_depth=5, rng=0).fit(
            task, data, range(dataset.d_data), ch
        )
        saw_data_split = False
        for tree in ff.trees_:
            for i, owner in enumerate(tree.owner_):
                if owner == 1 and tree.left_[i] != -1:
                    saw_data_split = True
                    assert tree.feature_[i] == -1
                    assert tree.threshold_[i] == 0.0
                    assert tree.uid_[i] >= 0
        assert saw_data_split, "expected at least one data-party split"

    def test_message_kinds_follow_protocol(self, setting):
        dataset, task, data = setting
        ch = Channel(keep_log=True)
        FederatedForest(2, max_depth=3, rng=0).fit(
            task, data, range(dataset.d_data), ch
        )
        kinds = {entry[2] for entry in ch.log}
        assert kinds <= {"hist_request", "hist_response", "split_request", "split_response"}

    def test_traffic_accounted(self, setting):
        dataset, task, data = setting
        ch = Channel()
        ff = FederatedForest(2, max_depth=4, rng=0).fit(
            task, data, range(dataset.d_data), ch
        )
        train_stats = ch.stats()
        assert train_stats["messages"] > 0 and train_stats["bytes"] > 0
        assert train_stats["rounds"] == 2  # one per tree
        ff.predict_proba(dataset.test_idx, ch)
        assert ch.stats()["messages"] > train_stats["messages"]

    def test_empty_bundle_rejected(self, setting):
        dataset, task, data = setting
        with pytest.raises(ValueError, match="at least one feature"):
            FederatedForest(2, rng=0).fit(task, data, (), Channel())

    def test_predict_before_fit_rejected(self):
        with pytest.raises(ValueError, match="fit"):
            FederatedForest(2, rng=0).predict_proba(np.arange(3), Channel())
