"""Tests for the accounting message channel."""

import numpy as np
import pytest

from repro.vfl import Channel, Message


class TestMessage:
    def test_array_payload_bytes(self):
        msg = Message("a", "b", "hist", np.zeros(10))
        assert msg.nbytes == 80

    def test_dict_payload_bytes(self):
        msg = Message("a", "b", "req", {"rows": np.zeros(4), "k": 1})
        assert msg.nbytes == 4 + 32 + 1 + 8  # keys ("rows", "k") + array + int

    def test_none_payload(self):
        assert Message("a", "b", "ping").nbytes == 0

    def test_scalar_and_string_payloads(self):
        assert Message("a", "b", "x", 3.5).nbytes == 8
        assert Message("a", "b", "x", "abc").nbytes == 3

    def test_nested_list_payload(self):
        assert Message("a", "b", "x", [np.zeros(2), np.zeros(3)]).nbytes == 40


class TestChannel:
    def test_send_receive_fifo(self):
        ch = Channel()
        ch.send(Message("task", "data", "m1", 1))
        ch.send(Message("task", "data", "m2", 2))
        assert ch.receive("data").kind == "m1"
        assert ch.receive("data").kind == "m2"

    def test_kind_mismatch_detected(self):
        ch = Channel()
        ch.send(Message("task", "data", "hist", None))
        with pytest.raises(ValueError, match="desync"):
            ch.receive("data", "split")

    def test_empty_inbox_rejected(self):
        with pytest.raises(ValueError, match="no pending"):
            Channel().receive("data")

    def test_self_send_rejected(self):
        with pytest.raises(ValueError, match="self"):
            Channel().send(Message("task", "task", "x"))

    def test_accounting(self):
        ch = Channel()
        ch.exchange("task", "data", "x", np.zeros(4))
        ch.exchange("data", "task", "y", np.zeros(2))
        stats = ch.stats()
        assert stats["messages"] == 2
        assert stats["bytes"] == 48

    def test_rounds_counted(self):
        ch = Channel()
        ch.next_round()
        ch.next_round()
        assert ch.stats()["rounds"] == 2

    def test_reset_stats(self):
        ch = Channel()
        ch.exchange("task", "data", "x", np.zeros(4))
        ch.reset_stats()
        assert ch.stats() == {"messages": 0, "bytes": 0, "rounds": 0}

    def test_log_disabled_by_default(self):
        ch = Channel()
        ch.exchange("task", "data", "x", 1)
        assert ch.log == []

    def test_log_records_when_enabled(self):
        ch = Channel(keep_log=True)
        ch.exchange("task", "data", "x", np.zeros(2))
        assert ch.log == [("task", "data", "x", 16)]
