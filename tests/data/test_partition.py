"""Tests for vertical partitioning."""

import numpy as np
import pytest

from repro.data import Column, ColumnKind, Schema, Table, VerticalPartitioner
from repro.data.preprocess import encode_indicators


def encoded_demo(n=40):
    rng = np.random.default_rng(0)
    schema = Schema.of(
        [
            Column("age", ColumnKind.NUMERIC),
            Column("port", ColumnKind.CATEGORICAL, ("S", "C", "Q")),
            Column("deck", ColumnKind.CATEGORICAL, ("A", "B")),
            Column("fare", ColumnKind.NUMERIC),
        ],
        name="demo",
    )
    table = Table(
        {
            "age": rng.normal(40, 10, n),
            "port": rng.integers(0, 3, n),
            "deck": rng.integers(0, 2, n),
            "fare": rng.normal(30, 5, n),
        }
    )
    return encode_indicators(table, schema, y=rng.integers(0, 2, n))


class TestVerticalPartitioner:
    def test_split_counts(self):
        ds = VerticalPartitioner(["age", "port"], ["deck", "fare"]).split(
            encoded_demo(), rng=0
        )
        assert ds.d_task == 4  # age + 3 port indicators
        assert ds.d_data == 3  # 2 deck indicators + fare

    def test_indicators_stay_on_one_party(self):
        ds = VerticalPartitioner(["age", "port"], ["deck", "fare"]).split(
            encoded_demo(), rng=0
        )
        assert all(n.startswith(("age", "port")) for n in ds.task_feature_names)
        assert all(n.startswith(("deck", "fare")) for n in ds.data_feature_names)

    def test_overlapping_assignment_rejected(self):
        with pytest.raises(ValueError, match="both parties"):
            VerticalPartitioner(["age"], ["age", "port"])

    def test_incomplete_assignment_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            VerticalPartitioner(["age"], ["deck"]).split(encoded_demo(), rng=0)

    def test_unknown_column_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            VerticalPartitioner(["age", "port", "ghost"], ["deck", "fare"]).split(
                encoded_demo(), rng=0
            )

    def test_train_test_views_align_with_labels(self):
        ds = VerticalPartitioner(["age", "port"], ["deck", "fare"]).split(
            encoded_demo(), test_size=0.25, rng=3
        )
        assert ds.task_train.shape[0] == ds.y_train.shape[0]
        assert ds.task_test.shape[0] == ds.y_test.shape[0]
        assert ds.task_train.shape[0] + ds.task_test.shape[0] == ds.n_samples

    def test_data_view_selects_bundle_columns(self):
        ds = VerticalPartitioner(["age", "port"], ["deck", "fare"]).split(
            encoded_demo(), rng=0
        )
        view = ds.data_view([0, 2])
        np.testing.assert_array_equal(view[:, 0], ds.X_data[:, 0])
        np.testing.assert_array_equal(view[:, 1], ds.X_data[:, 2])

    def test_summary_shape(self):
        ds = VerticalPartitioner(["age", "port"], ["deck", "fare"]).split(
            encoded_demo(), rng=0
        )
        summary = ds.summary()
        assert set(summary) == {
            "n_samples",
            "original_features_total",
            "task_party_features",
            "data_party_features",
        }
