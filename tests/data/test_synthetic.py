"""Tests for the synthetic dataset generators (Table 2 fidelity)."""

import numpy as np
import pytest

from repro.data import load_adult, load_credit, load_dataset, load_titanic
from repro.data.synthetic.base import fit_intercept_for_rate, labels_from_score, sigmoid
from repro.utils import spawn

# Paper Table 2: (n, original total, task-party encoded, data-party encoded).
PAPER_TABLE2 = {
    "titanic": (891, 11, 10, 19),
    "credit": (30_000, 25, 9, 21),
    "adult": (48_842, 14, 52, 36),
}


class TestBaseHelpers:
    def test_sigmoid_matches_closed_form(self):
        z = np.linspace(-10, 10, 41)
        np.testing.assert_allclose(sigmoid(z), 1 / (1 + np.exp(-z)), atol=1e-12)

    def test_sigmoid_stable_at_extremes(self):
        out = sigmoid(np.array([-800.0, 800.0]))
        assert out[0] == 0.0 and out[1] == 1.0

    def test_intercept_hits_target_rate(self):
        rng = spawn(0, "t")
        score = rng.normal(0, 2, 20_000)
        b = fit_intercept_for_rate(score, 0.3)
        assert sigmoid(score + b).mean() == pytest.approx(0.3, abs=1e-3)

    def test_labels_match_rate(self):
        rng = spawn(0, "labels")
        score = rng.normal(0, 1.5, 50_000)
        y = labels_from_score(rng, score, positive_rate=0.25)
        assert y.mean() == pytest.approx(0.25, abs=0.01)

    def test_labels_correlate_with_score(self):
        rng = spawn(0, "corr")
        score = rng.normal(0, 2, 10_000)
        y = labels_from_score(rng, score, positive_rate=0.4)
        assert score[y == 1].mean() > score[y == 0].mean()


@pytest.mark.parametrize("name", ["titanic", "credit", "adult"])
class TestTable2Fidelity:
    def test_feature_counts_match_paper(self, name):
        n_paper, orig, d_task, d_data = PAPER_TABLE2[name]
        ds = load_dataset(name, n_samples=600, seed=0).prepare(seed=0)
        assert ds.summary()["original_features_total"] == orig
        assert ds.d_task == d_task
        assert ds.d_data == d_data

    def test_default_row_count_matches_paper(self, name):
        n_paper = PAPER_TABLE2[name][0]
        loader = {"titanic": load_titanic, "credit": load_credit, "adult": load_adult}[
            name
        ]
        # Only titanic is cheap enough to fully generate in unit tests,
        # but the default argument itself must match the paper for all.
        import inspect

        default_n = inspect.signature(loader).parameters["n_samples"].default
        assert default_n == n_paper

    def test_generation_deterministic(self, name):
        a = load_dataset(name, n_samples=300, seed=7)
        b = load_dataset(name, n_samples=300, seed=7)
        assert a.table == b.table
        np.testing.assert_array_equal(a.y, b.y)

    def test_different_seeds_differ(self, name):
        a = load_dataset(name, n_samples=300, seed=1)
        b = load_dataset(name, n_samples=300, seed=2)
        assert a.table != b.table


class TestDatasetSemantics:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("mnist")

    def test_titanic_positive_rate(self):
        y = load_titanic(3000, seed=0).y
        assert y.mean() == pytest.approx(0.384, abs=0.04)

    def test_credit_positive_rate(self):
        y = load_credit(5000, seed=0).y
        assert y.mean() == pytest.approx(0.221, abs=0.04)

    def test_adult_positive_rate(self):
        y = load_adult(5000, seed=0).y
        assert y.mean() == pytest.approx(0.239, abs=0.04)

    def test_titanic_age_has_missing_values(self):
        raw = load_titanic(seed=0)
        assert np.isnan(np.asarray(raw.table["age"], dtype=float)).any()

    def test_prepare_removes_missing(self):
        ds = load_titanic(seed=0).prepare(seed=0)
        assert np.all(np.isfinite(ds.X_task))
        assert np.all(np.isfinite(ds.X_data))

    def test_prepare_subsample(self):
        ds = load_credit(2000, seed=0).prepare(seed=0, n_subsample=500)
        assert ds.n_samples == 500

    def test_data_party_features_carry_signal(self):
        """Data-party features must add label signal beyond the task party's.

        This is the premise of the whole market: a simple
        class-conditional mean-difference check on a strong data-party
        column suffices as a smoke test (model-based checks live in the
        VFL integration tests).
        """
        raw = load_credit(8000, seed=0)
        pay0 = np.asarray(raw.table["pay_0"], dtype=float)
        assert pay0[raw.y == 1].mean() - pay0[raw.y == 0].mean() > 0.5

    def test_adult_capital_gain_mostly_zero_heavy_tail(self):
        raw = load_adult(8000, seed=0)
        gain = np.asarray(raw.table["capital_gain"], dtype=float)
        assert (gain == 0).mean() > 0.8
        assert gain.max() > 10_000
