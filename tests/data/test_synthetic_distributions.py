"""Distributional sanity checks on the synthetic generators.

These guard the calibration DESIGN.md §5 promises: realistic marginal
shapes and the cross-party signal structure the market prices.
"""

import numpy as np
import pytest

from repro.data import load_adult, load_credit, load_titanic
from repro.ml import LogisticRegression


class TestTitanicDistributions:
    @pytest.fixture(scope="class")
    def raw(self):
        return load_titanic(3000, seed=0)

    def test_age_range_and_center(self, raw):
        age = np.asarray(raw.table["age"], dtype=float)
        finite = age[np.isfinite(age)]
        assert 0.0 < finite.min() and finite.max() <= 80.0
        assert 25.0 < finite.mean() < 35.0

    def test_fare_right_skewed(self, raw):
        fare = np.asarray(raw.table["fare"], dtype=float)
        assert fare.mean() > np.median(fare)  # lognormal tail

    def test_wealth_links_class_and_fare(self, raw):
        pclass = np.asarray(raw.table["pclass"], dtype=int)
        fare = np.asarray(raw.table["fare"], dtype=float)
        assert fare[pclass == 0].mean() > fare[pclass == 2].mean()

    def test_women_survive_more(self, raw):
        sex = np.asarray(raw.table["sex"], dtype=float)
        assert raw.y[sex == 1].mean() > raw.y[sex == 0].mean() + 0.15

    def test_unknown_deck_is_most_common(self, raw):
        deck = np.asarray(raw.table["cabin_deck"], dtype=int)
        # Category index 8 is "U" (unknown).
        assert np.bincount(deck).argmax() == 8


class TestCreditDistributions:
    @pytest.fixture(scope="class")
    def raw(self):
        return load_credit(6000, seed=0)

    def test_limit_balance_positive_lognormal(self, raw):
        limit = np.asarray(raw.table["limit_bal"], dtype=float)
        assert limit.min() >= 10_000
        assert limit.mean() > np.median(limit)

    def test_repayment_status_range(self, raw):
        pay = np.asarray(raw.table["pay_0"], dtype=float)
        assert pay.min() >= -2.0 and pay.max() <= 8.0

    def test_utilization_consistency(self, raw):
        util = np.asarray(raw.table["utilization"], dtype=float)
        bills = np.asarray(raw.table["avg_bill"], dtype=float)
        limit = np.asarray(raw.table["limit_bal"], dtype=float)
        np.testing.assert_allclose(util, np.clip(bills / limit, 0, 4), atol=1e-9)

    def test_defaulters_have_worse_repayment(self, raw):
        pay = np.asarray(raw.table["pay_0"], dtype=float)
        assert pay[raw.y == 1].mean() > pay[raw.y == 0].mean()


class TestAdultDistributions:
    @pytest.fixture(scope="class")
    def raw(self):
        return load_adult(6000, seed=0)

    def test_hours_centered_at_forty(self, raw):
        hours = np.asarray(raw.table["hours_per_week"], dtype=float)
        assert 35.0 < hours.mean() < 45.0

    def test_education_years_match_levels(self, raw):
        edu = np.asarray(raw.table["education"], dtype=int)
        years = np.asarray(raw.table["education_num"], dtype=float)
        doctorate = years[edu == 15]
        preschool = years[edu == 0]
        if doctorate.size and preschool.size:
            assert doctorate.mean() > preschool.mean() + 8

    def test_high_earners_more_educated(self, raw):
        years = np.asarray(raw.table["education_num"], dtype=float)
        assert years[raw.y == 1].mean() > years[raw.y == 0].mean() + 1.0

    def test_capital_gain_predicts_income(self, raw):
        gain = np.asarray(raw.table["capital_gain"], dtype=float)
        assert (gain[raw.y == 1] > 0).mean() > (gain[raw.y == 0] > 0).mean()


@pytest.mark.parametrize("loader", [load_titanic, load_credit, load_adult])
def test_joint_features_beat_task_features_linearly(loader):
    """The market's premise holds even for a linear probe.

    A logistic regression on task+data features must beat one on task
    features alone — the data party's features carry real signal beyond
    proxies of what the task party owns.
    """
    ds = loader(2500, seed=0).prepare(seed=0)
    task_only = LogisticRegression(max_iter=200).fit(
        ds.task_train, ds.y_train.astype(float)
    )
    joint = LogisticRegression(max_iter=200).fit(
        np.hstack([ds.task_train, ds.data_train]), ds.y_train.astype(float)
    )
    acc_task = task_only.score(ds.task_test, ds.y_test)
    acc_joint = joint.score(
        np.hstack([ds.task_test, ds.data_test]), ds.y_test
    )
    assert acc_joint >= acc_task - 0.005  # never meaningfully worse
    # And strictly better on at least the AUC-like margin for Titanic's
    # strong data-party signal (checked loosely to stay robust).
    if loader is load_titanic:
        assert acc_joint > acc_task + 0.02
