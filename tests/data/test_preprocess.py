"""Tests for imputation, indicator encoding and splitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Column, ColumnKind, Schema, Standardizer, Table
from repro.data.preprocess import encode_indicators, impute_missing, train_test_split


def demo_schema():
    return Schema.of(
        [
            Column("age", ColumnKind.NUMERIC),
            Column("vip", ColumnKind.BINARY),
            Column("port", ColumnKind.CATEGORICAL, ("S", "C", "Q")),
        ],
        name="demo",
    )


def demo_table():
    return Table(
        {
            "age": [30.0, np.nan, 50.0, 40.0],
            "vip": [0, 1, 0, -1],
            "port": [0, 2, -1, 1],
        }
    )


class TestImputeMissing:
    def test_numeric_median_fill(self):
        out = impute_missing(demo_table(), demo_schema())
        assert out["age"][1] == pytest.approx(40.0)  # median of 30/50/40

    def test_categorical_mode_fill(self):
        t = Table({"age": [1.0] * 4, "vip": [1, 1, 0, 1], "port": [0, 0, -1, 1]})
        out = impute_missing(t, demo_schema())
        assert out["port"][2] == 0

    def test_binary_missing_code_filled(self):
        out = impute_missing(demo_table(), demo_schema())
        assert out["vip"][3] in (0, 1)

    def test_no_missing_is_identity(self):
        t = Table({"age": [1.0, 2.0], "vip": [0, 1], "port": [0, 1]})
        assert impute_missing(t, demo_schema()) == t


class TestEncodeIndicators:
    def test_shapes_and_names(self):
        table = impute_missing(demo_table(), demo_schema())
        enc = encode_indicators(table, demo_schema(), y=np.zeros(4, dtype=int))
        assert enc.X.shape == (4, 5)
        assert enc.feature_names == ("age", "vip", "port=S", "port=C", "port=Q")

    def test_one_hot_rows_sum_to_one(self):
        table = impute_missing(demo_table(), demo_schema())
        enc = encode_indicators(table, demo_schema(), y=np.zeros(4, dtype=int))
        port_block = enc.X[:, [2, 3, 4]]
        np.testing.assert_array_equal(port_block.sum(axis=1), np.ones(4))

    def test_groups_partition_columns(self):
        table = impute_missing(demo_table(), demo_schema())
        enc = encode_indicators(table, demo_schema(), y=np.zeros(4, dtype=int))
        assert enc.groups == {"age": (0,), "vip": (1,), "port": (2, 3, 4)}

    def test_unimputed_missing_rejected(self):
        with pytest.raises(ValueError, match="impute first"):
            encode_indicators(demo_table(), demo_schema(), y=np.zeros(4, dtype=int))

    def test_out_of_range_code_rejected(self):
        t = Table({"age": [1.0], "vip": [0], "port": [7]})
        with pytest.raises(ValueError, match="outside"):
            encode_indicators(t, demo_schema(), y=np.zeros(1, dtype=int))

    def test_index_and_group_lookup(self):
        table = impute_missing(demo_table(), demo_schema())
        enc = encode_indicators(table, demo_schema(), y=np.zeros(4, dtype=int))
        assert enc.index_of("port=C") == 3
        assert enc.group_of("port") == (2, 3, 4)
        with pytest.raises(KeyError):
            enc.index_of("nope")
        with pytest.raises(KeyError):
            enc.group_of("nope")


class TestStandardizer:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 2))
        Z = Standardizer().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_indicator_columns_left_alone(self):
        X = np.column_stack([np.array([0.0, 1.0, 1.0, 0.0]), np.arange(4.0)])
        Z = Standardizer().fit_transform(X)
        np.testing.assert_array_equal(Z[:, 0], X[:, 0])

    def test_constant_column_no_nan(self):
        X = np.full((10, 1), 7.0)
        Z = Standardizer().fit_transform(X)
        assert np.all(np.isfinite(Z))

    def test_transform_before_fit_rejected(self):
        with pytest.raises(ValueError, match="fit"):
            Standardizer().transform(np.zeros((2, 2)))

    def test_train_statistics_applied_to_test(self):
        scaler = Standardizer().fit(np.array([[0.0], [10.0]]))
        np.testing.assert_allclose(scaler.transform(np.array([[5.0]])), [[0.0]])


class TestTrainTestSplit:
    def test_sizes(self):
        train, test = train_test_split(100, test_size=0.25, rng=0)
        assert len(train) == 75 and len(test) == 25

    def test_disjoint_and_cover(self):
        train, test = train_test_split(50, test_size=0.3, rng=1)
        combined = np.sort(np.concatenate([train, test]))
        np.testing.assert_array_equal(combined, np.arange(50))

    def test_deterministic_given_rng(self):
        a = train_test_split(30, rng=5)
        b = train_test_split(30, rng=5)
        np.testing.assert_array_equal(a[0], b[0])

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            train_test_split(2)

    def test_degenerate_test_size_rejected(self):
        with pytest.raises(ValueError):
            train_test_split(10, test_size=1.0)


@settings(max_examples=20, deadline=None)
@given(codes=st.lists(st.integers(min_value=0, max_value=2), min_size=2, max_size=60))
def test_encoding_preserves_category_counts(codes):
    """Sum of each indicator column equals the category's frequency."""
    n = len(codes)
    schema = Schema.of([Column("c", ColumnKind.CATEGORICAL, ("a", "b", "c"))])
    table = Table({"c": np.asarray(codes, dtype=np.int64)})
    enc = encode_indicators(table, schema, y=np.zeros(n, dtype=int))
    counts = np.bincount(np.asarray(codes), minlength=3)
    np.testing.assert_array_equal(enc.X.sum(axis=0), counts.astype(float))
