"""Tests for dataset schemas."""

import pytest

from repro.data import Column, ColumnKind, Schema


def make_schema():
    return Schema.of(
        [
            Column("age", ColumnKind.NUMERIC),
            Column("sex", ColumnKind.BINARY, ("m", "f")),
            Column("port", ColumnKind.CATEGORICAL, ("S", "C", "Q")),
        ],
        label="y",
        name="demo",
    )


class TestColumn:
    def test_numeric_encodes_to_one(self):
        col = Column("age", ColumnKind.NUMERIC)
        assert col.n_encoded == 1
        assert col.encoded_names() == ["age"]

    def test_categorical_encodes_per_category(self):
        col = Column("port", ColumnKind.CATEGORICAL, ("S", "C", "Q"))
        assert col.n_encoded == 3
        assert col.encoded_names() == ["port=S", "port=C", "port=Q"]

    def test_categorical_requires_two_categories(self):
        with pytest.raises(ValueError, match=">= 2 categories"):
            Column("bad", ColumnKind.CATEGORICAL, ("only",))

    def test_categorical_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            Column("bad", ColumnKind.CATEGORICAL, ("a", "a"))

    def test_binary_state_count(self):
        with pytest.raises(ValueError, match="exactly 2"):
            Column("bad", ColumnKind.BINARY, ("a", "b", "c"))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Column("", ColumnKind.NUMERIC)


class TestSchema:
    def test_counts(self):
        schema = make_schema()
        assert len(schema) == 3
        assert schema.n_raw_features == 3
        assert schema.n_encoded_features == 5  # 1 + 1 + 3

    def test_lookup(self):
        schema = make_schema()
        assert schema.column("sex").kind is ColumnKind.BINARY
        assert "age" in schema
        assert "missing" not in schema

    def test_lookup_unknown_raises_keyerror_with_known_names(self):
        with pytest.raises(KeyError, match="age"):
            make_schema().column("nope")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema.of([Column("x", ColumnKind.NUMERIC)] * 2)

    def test_label_cannot_be_feature(self):
        with pytest.raises(ValueError, match="label"):
            Schema.of([Column("y", ColumnKind.NUMERIC)], label="y")

    def test_select_preserves_order_of_names(self):
        sub = make_schema().select(["port", "age"])
        assert sub.feature_names == ["port", "age"]

    def test_encoded_names_order(self):
        assert make_schema().encoded_names() == [
            "age",
            "sex",
            "port=S",
            "port=C",
            "port=Q",
        ]

    def test_iteration(self):
        assert [c.name for c in make_schema()] == ["age", "sex", "port"]
