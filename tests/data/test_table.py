"""Tests for the immutable column-store Table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Table


def make_table():
    return Table({"a": [1.0, 2.0, 3.0], "b": [10, 20, 30]})


class TestConstruction:
    def test_basic_shape(self):
        t = make_table()
        assert t.n_rows == 3
        assert t.n_columns == 2
        assert t.column_names == ["a", "b"]

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            Table({"a": [1, 2], "b": [1, 2, 3]})

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError, match="at least one column"):
            Table({})

    def test_2d_column_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            Table({"a": np.zeros((2, 2))})

    def test_columns_are_readonly(self):
        t = make_table()
        with pytest.raises(ValueError):
            t.column("a")[0] = 99.0

    def test_source_mutation_does_not_leak(self):
        src = np.array([1.0, 2.0])
        t = Table({"a": src})
        src[0] = 99.0
        assert t.column("a")[0] == 1.0


class TestAccess:
    def test_getitem_and_column_agree(self):
        t = make_table()
        np.testing.assert_array_equal(t["a"], t.column("a"))

    def test_missing_column_raises_with_known_names(self):
        with pytest.raises(KeyError, match="'a', 'b'|\\['a', 'b'\\]"):
            make_table().column("zzz")

    def test_contains(self):
        assert "a" in make_table()
        assert "z" not in make_table()


class TestTransformations:
    def test_select_order(self):
        t = make_table().select(["b", "a"])
        assert t.column_names == ["b", "a"]

    def test_drop(self):
        assert make_table().drop(["a"]).column_names == ["b"]

    def test_with_column_appends(self):
        t = make_table().with_column("c", [7, 8, 9])
        assert t.column_names == ["a", "b", "c"]

    def test_with_column_replaces(self):
        t = make_table().with_column("a", [0.0, 0.0, 0.0])
        assert t.column("a").sum() == 0.0

    def test_rename(self):
        t = make_table().rename({"a": "alpha"})
        assert t.column_names == ["alpha", "b"]

    def test_take_reorders(self):
        t = make_table().take([2, 0])
        np.testing.assert_array_equal(t["a"], [3.0, 1.0])

    def test_hstack(self):
        other = Table({"c": [5, 6, 7]})
        t = make_table().hstack(other)
        assert t.column_names == ["a", "b", "c"]

    def test_hstack_collision_rejected(self):
        with pytest.raises(ValueError, match="collision"):
            make_table().hstack(Table({"a": [0, 0, 0]}))

    def test_hstack_row_mismatch_rejected(self):
        with pytest.raises(ValueError, match="row mismatch"):
            make_table().hstack(Table({"c": [1]}))

    def test_to_matrix(self):
        m = make_table().to_matrix()
        assert m.shape == (3, 2)
        np.testing.assert_array_equal(m[:, 1], [10.0, 20.0, 30.0])

    def test_head(self):
        assert make_table().head(2).n_rows == 2
        assert make_table().head(100).n_rows == 3


class TestEqualityAndSummary:
    def test_equality(self):
        assert make_table() == make_table()
        assert make_table() != make_table().rename({"a": "x"})

    def test_equality_nan_aware(self):
        a = Table({"v": [1.0, np.nan]})
        b = Table({"v": [1.0, np.nan]})
        assert a == b

    def test_describe_missing_fraction(self):
        t = Table({"v": [1.0, np.nan, 3.0, np.nan]})
        assert t.describe()["v"]["missing"] == pytest.approx(0.5)

    def test_repr_mentions_rows(self):
        assert "3 rows" in repr(make_table())


@settings(max_examples=25, deadline=None)
@given(
    values=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        min_size=1,
        max_size=40,
    )
)
def test_take_roundtrip_property(values):
    """take(identity permutation) reproduces the table exactly."""
    t = Table({"v": np.asarray(values, dtype=np.float64)})
    assert t.take(np.arange(t.n_rows)) == t
